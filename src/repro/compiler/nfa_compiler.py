"""NFA-mode compilation: full unfolding + classical Glushkov construction.

This is the baseline path (the paper omits its description because it is
the classical construction): every bounded repetition is unfolded, the
homogeneous automaton is built, and states are packed into tiles at one
CAM column per 32-bit character-class code.
"""

from __future__ import annotations

from repro.automata.glushkov import Automaton, build_automaton
from repro.compiler.placement import Placement, global_ports
from repro.compiler.program import (
    CapacityError,
    CompiledMode,
    CompiledRegex,
    TileRequest,
)
from repro.hardware.config import HardwareConfig, TileMode
from repro.hardware.encoding import codes_needed
from repro.regex.ast import Regex


def compile_nfa(
    regex_id: int,
    pattern: str,
    regex: Regex,
    hw: HardwareConfig,
) -> CompiledRegex:
    """Compile ``regex`` for NFA-mode execution.

    Bounded repetitions are expanded structurally inside the Glushkov
    construction (``counters=False``), which keeps the follow structure
    linear and avoids materializing ClamAV-scale unfolded ASTs.
    """
    if regex.unfolded_size() > hw.max_regex_states:
        raise CapacityError(
            f"regex needs {regex.unfolded_size()} STEs after unfolding; "
            f"NFA mode supports at most {hw.max_regex_states} (one array)"
        )
    automaton = build_automaton(regex, counters=False)
    placement = place_nfa(automaton, hw)
    requests = nfa_tile_requests(automaton, placement, hw)
    return CompiledRegex(
        regex_id=regex_id,
        pattern=pattern,
        mode=CompiledMode.NFA,
        automaton=automaton,
        tile_requests=requests,
        source_states=regex.literal_count(),
        unfolded_states=regex.unfolded_size(),
    )


def place_nfa(automaton: Automaton, hw: HardwareConfig) -> Placement:
    """Pack states into tiles in position order, one code-column each."""
    tile_of: list[int] = []
    tile = 0
    used_cols = 0
    for pos in automaton.positions:
        cols = codes_needed(pos.cc)
        if used_cols + cols > hw.cam_cols:
            tile += 1
            used_cols = 0
        tile_of.append(tile)
        used_cols += cols
    return Placement(tuple(tile_of))


def nfa_tile_requests(
    automaton: Automaton, placement: Placement, hw: HardwareConfig
) -> tuple[TileRequest, ...]:
    """Per-tile resource requests for a placed NFA."""
    ports = global_ports(automaton, placement)
    requests = []
    for tile in range(placement.tile_count):
        states = placement.states_in(tile)
        cc_cols = sum(codes_needed(automaton.positions[p].cc) for p in states)
        request = TileRequest(
            mode=TileMode.NFA,
            states=len(states),
            cc_columns=cc_cols,
            global_ports=ports[tile],
        )
        request.validate(hw.cam_cols)
        requests.append(request)
    return tuple(requests)
