"""Placement of automaton states onto tiles and global-port accounting.

The compiler packs states into tiles in position order (Glushkov position
order follows the regex text, so most follow edges stay tile-local) and
counts the states that must reach the array-level global switch: a state
needs a global port when at least one of its in- or out-edges crosses a
tile boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.glushkov import Automaton


@dataclass(frozen=True)
class Placement:
    """Assignment of every position to a tile index (within one regex)."""

    tile_of: tuple[int, ...]

    @property
    def tile_count(self) -> int:
        """Number of tiles the placement spans."""
        return max(self.tile_of) + 1 if self.tile_of else 0

    def states_in(self, tile: int) -> list[int]:
        """Position ids assigned to one tile."""
        return [pid for pid, t in enumerate(self.tile_of) if t == tile]


def global_ports(automaton: Automaton, placement: Placement) -> list[int]:
    """Per-tile count of global-switch ports.

    The local switch OR-aggregates fan-in per row (Section 2.2), so one
    cross-tile *destination* costs one outgoing wire on each source tile
    and one incoming wire on its own tile, regardless of how many source
    states feed it.
    """
    tile_of = placement.tile_of
    out_dsts: dict[int, set[int]] = {}
    in_dsts: dict[int, set[int]] = {}
    for edge in automaton.edges:
        src_tile, dst_tile = tile_of[edge.src], tile_of[edge.dst]
        if src_tile != dst_tile:
            out_dsts.setdefault(src_tile, set()).add(edge.dst)
            in_dsts.setdefault(dst_tile, set()).add(edge.dst)
    counts = [0] * placement.tile_count
    for tile, dsts in out_dsts.items():
        counts[tile] += len(dsts)
    for tile, dsts in in_dsts.items():
        counts[tile] += len(dsts)
    return counts


def cross_tile_edges(automaton: Automaton, placement: Placement) -> int:
    """Number of follow edges crossing a tile boundary (wire activity)."""
    tile_of = placement.tile_of
    return sum(
        1 for e in automaton.edges if tile_of[e.src] != tile_of[e.dst]
    )
