"""NBVA-mode compilation (Section 4.1).

Pipeline: unfolding rewriting (threshold-controlled) -> counting-
compatibility rewriting -> bounded-repetition rewriting into the two
hardware-readable shapes -> tile splitting of oversized repetitions
(Example 4.3) -> counting Glushkov construction -> tile packing under the
two NBVA tile constraints (at most ``cam_cols`` CAM columns; no ``r(m)``
and ``rAll`` reads in the same tile).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.glushkov import (
    Automaton,
    EdgeAction,
    ReadKind,
    build_automaton,
)
from repro.compiler.placement import Placement, global_ports
from repro.compiler.program import (
    CapacityError,
    CompiledMode,
    CompiledRegex,
    CompileError,
    TileRequest,
)
from repro.hardware.config import HardwareConfig, TileMode
from repro.hardware.encoding import codes_needed
from repro.regex import ast
from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Lit,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
)
from repro.regex.rewrite import (
    RewriteError,
    make_countable,
    rewrite_bounds_for_bv,
    unfold,
)


def prepare_nbva(
    regex: Regex,
    *,
    unfold_threshold: int,
    depth: int,
    hw: HardwareConfig,
    word_align_exact: bool = True,
) -> Regex:
    """Run all NBVA-mode rewritings; the result is construction-ready."""
    try:
        prepared = make_countable(unfold(regex, unfold_threshold))
        prepared = rewrite_bounds_for_bv(
            prepared, depth=depth, word_align_exact=word_align_exact
        )
    except RewriteError as err:
        raise CompileError(f"NBVA rewriting failed: {err}") from err
    return split_large_repeats(prepared, depth=depth, hw=hw)


def compile_nbva(
    regex_id: int,
    pattern: str,
    regex: Regex,
    *,
    unfold_threshold: int,
    depth: int,
    hw: HardwareConfig,
    word_align_exact: bool = True,
) -> CompiledRegex | None:
    """Compile for NBVA mode; ``None`` if no counter group survives
    (the caller then falls through the decision graph)."""
    prepared = prepare_nbva(
        regex,
        unfold_threshold=unfold_threshold,
        depth=depth,
        hw=hw,
        word_align_exact=word_align_exact,
    )
    automaton = build_automaton(prepared)
    if automaton.is_plain:
        return None
    if regex.unfolded_size() > hw.max_nbva_unfolded_states:
        raise CapacityError(
            f"regex unfolds to {regex.unfolded_size()} STEs; NBVA mode "
            f"supports at most {hw.max_nbva_unfolded_states}"
        )
    placement, requests = plan_nbva_tiles(automaton, depth=depth, hw=hw)
    return CompiledRegex(
        regex_id=regex_id,
        pattern=pattern,
        mode=CompiledMode.NBVA,
        automaton=automaton,
        tile_requests=requests,
        source_states=regex.literal_count(),
        unfolded_states=regex.unfolded_size(),
    )


# ---------------------------------------------------------------------------
# Tile splitting (Example 4.3)
# ---------------------------------------------------------------------------


def repeat_columns(node: Repeat, depth: int) -> int:
    """CAM columns a counted repetition occupies in one tile.

    Per body state: its CC code columns plus ``ceil(bound / depth)`` BV
    columns; plus one initial-vector (set1) column per entry state.
    """
    assert node.hi is not None
    body_states = [n.cc for n in node.inner.walk() if isinstance(n, Lit)]
    cc_cols = sum(codes_needed(cc) for cc in body_states)
    bv_cols_per_state = -(-node.hi // depth)
    entry_cols = _entry_states(node.inner)
    return cc_cols + len(body_states) * bv_cols_per_state + entry_cols


def _entry_states(body: Regex) -> int:
    """How many states can be entered first in ``body`` (receive set1)."""
    if isinstance(body, Lit):
        return 1
    if isinstance(body, Concat):
        count = 0
        for part in body.parts:
            count += _entry_states(part)
            if not part.nullable():
                break
        return count
    if isinstance(body, Alt):
        return sum(_entry_states(p) for p in body.parts)
    if isinstance(body, (Star, Plus, Opt)):
        return _entry_states(body.inner)
    if isinstance(body, Repeat):
        return _entry_states(body.inner)
    return 0


def split_large_repeats(regex: Regex, *, depth: int, hw: HardwareConfig) -> Regex:
    """Split repetitions whose column cost exceeds one tile.

    ``r{m}`` becomes ``r{k} r{k} ... r{rem}`` and ``r{0,k}`` becomes a
    concatenation of ``r{0,k_i}`` pieces — both language-preserving —
    where each piece fits a tile (Example 4.3 finds k = 504 for
    ``a{1024}`` at depth 4).
    """
    return _split(regex, depth, hw)


def _split(node: Regex, depth: int, hw: HardwareConfig) -> Regex:
    if isinstance(node, (Empty, Epsilon, Lit)):
        return node
    if isinstance(node, Concat):
        return ast.concat(*(_split(p, depth, hw) for p in node.parts))
    if isinstance(node, Alt):
        return ast.alt(*(_split(p, depth, hw) for p in node.parts))
    if isinstance(node, Star):
        return ast.star(_split(node.inner, depth, hw))
    if isinstance(node, Plus):
        return ast.plus(_split(node.inner, depth, hw))
    if isinstance(node, Opt):
        return ast.opt(_split(node.inner, depth, hw))
    if isinstance(node, Repeat):
        assert node.hi is not None
        inner = _split(node.inner, depth, hw)
        rebuilt = ast.repeat(inner, node.lo, node.hi)
        if not isinstance(rebuilt, Repeat):
            return rebuilt
        if repeat_columns(rebuilt, depth) <= hw.cam_cols:
            return rebuilt
        return _split_one(rebuilt, depth, hw)
    raise TypeError(f"unknown regex node: {type(node).__name__}")


def _split_one(node: Repeat, depth: int, hw: HardwareConfig) -> Regex:
    assert node.hi is not None
    body_states = [n for n in node.inner.walk() if isinstance(n, Lit)]
    cc_cols = sum(codes_needed(n.cc) for n in body_states)
    entry_cols = _entry_states(node.inner)
    budget = hw.cam_cols - cc_cols - entry_cols
    s = len(body_states)
    words = budget // s if s else 0
    chunk = words * depth
    if chunk < 2:
        raise CapacityError(
            f"counted repetition {node.to_pattern()} cannot fit a tile "
            f"even after splitting (body too wide)"
        )
    if node.lo == node.hi:  # exact
        pieces: list[Regex] = []
        remaining = node.hi
        while remaining > 0:
            piece = min(chunk, remaining)
            pieces.append(ast.repeat(node.inner, piece, piece))
            remaining -= piece
        return ast.concat(*pieces)
    assert node.lo == 0  # rAll shape
    pieces = []
    remaining = node.hi
    while remaining > 0:
        piece = min(chunk, remaining)
        pieces.append(ast.repeat(node.inner, 0, piece))
        remaining -= piece
    return ast.concat(*pieces)


# ---------------------------------------------------------------------------
# Tile packing
# ---------------------------------------------------------------------------


@dataclass
class _Unit:
    """One atomic placement unit: a plain state or a whole counter group."""

    pids: list[int]
    cc_columns: int
    bv_columns: int
    set1_columns: int
    read: ReadKind | None


def plan_nbva_tiles(
    automaton: Automaton, *, depth: int, hw: HardwareConfig
) -> tuple[Placement, tuple[TileRequest, ...]]:
    """Pack states/groups into tiles and derive the per-tile requests."""
    units = _units_in_order(automaton, depth, hw)

    tiles: list[list[_Unit]] = []
    current: list[_Unit] = []
    cols = 0
    read: ReadKind | None = None
    for unit in units:
        unit_cols = unit.cc_columns + unit.bv_columns + unit.set1_columns
        if unit_cols > hw.cam_cols:
            raise CapacityError(
                f"placement unit needs {unit_cols} columns "
                f"(tile capacity {hw.cam_cols}); splitting failed"
            )
        conflict = unit.read is not None and read is not None and unit.read != read
        if current and (cols + unit_cols > hw.cam_cols or conflict):
            tiles.append(current)
            current, cols, read = [], 0, None
        current.append(unit)
        cols += unit_cols
        read = read or unit.read
    if current:
        tiles.append(current)

    tile_of = [0] * automaton.state_count
    for tile_idx, tile_units in enumerate(tiles):
        for unit in tile_units:
            for pid in unit.pids:
                tile_of[pid] = tile_idx
    placement = Placement(tuple(tile_of))
    ports = global_ports(automaton, placement)

    requests = []
    for tile_idx, tile_units in enumerate(tiles):
        bv_cols = sum(u.bv_columns for u in tile_units)
        reads = {u.read for u in tile_units if u.read is not None}
        request = TileRequest(
            mode=TileMode.NBVA if bv_cols else TileMode.NFA,
            states=sum(len(u.pids) for u in tile_units),
            cc_columns=sum(u.cc_columns for u in tile_units),
            bv_columns=bv_cols,
            set1_columns=sum(u.set1_columns for u in tile_units),
            depth=depth if bv_cols else None,
            read=reads.pop() if reads else None,
            global_ports=ports[tile_idx],
        )
        request.validate(hw.cam_cols)
        requests.append(request)
    return placement, tuple(requests)


def _units_in_order(
    automaton: Automaton, depth: int, hw: HardwareConfig
) -> list[_Unit]:
    set1_targets = {
        e.dst for e in automaton.edges if e.action is EdgeAction.SET1
    }
    set1_targets |= {
        pid for pid in automaton.initial if automaton.positions[pid].is_counted
    }
    group_first_pid = {g.gid: min(g.positions) for g in automaton.groups}

    units: list[_Unit] = []
    handled: set[int] = set()
    for pos in automaton.positions:
        if pos.pid in handled:
            continue
        if pos.group is None:
            units.append(
                _Unit(
                    pids=[pos.pid],
                    cc_columns=codes_needed(pos.cc),
                    bv_columns=0,
                    set1_columns=0,
                    read=None,
                )
            )
            continue
        group = automaton.groups[pos.group]
        assert group_first_pid[group.gid] == pos.pid, (
            "group positions must be contiguous in position order"
        )
        if group.width > hw.max_bv_bits:
            raise CapacityError(
                f"bit vector of {group.width} bits exceeds the "
                f"{hw.max_bv_bits}-bit hardware limit; splitting failed"
            )
        bv_cols_per_state = -(-group.width // depth)
        units.append(
            _Unit(
                pids=list(group.positions),
                cc_columns=sum(
                    codes_needed(automaton.positions[p].cc)
                    for p in group.positions
                ),
                bv_columns=bv_cols_per_state * len(group.positions),
                set1_columns=sum(
                    1 for p in group.positions if p in set1_targets
                ),
                read=group.read,
            )
        )
        handled.update(group.positions)
    return units
