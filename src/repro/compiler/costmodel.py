"""Cost-model mode selection: features, per-mode byte costs, ModePlan.

This module is the single home of the compiler's mode-selection policy.
It extracts static per-regex features (state counts, predicted activity,
class-map fanout, DFA subset size under a budget), scores them against
calibrated per-mode byte costs, and returns a :class:`ModePlan` carrying
the chosen :class:`~repro.compiler.program.CompiledMode` plus a
structured :class:`DecisionTrace` for debuggability (``rap scan
--explain``).

The selection keeps the Fig. 9 decision graph's structural precedence —
NBVA when a countable repetition survives the rewritings, then LNFA when
linearization fits the blowup allowance — because counting and
lane-packing are *capacity* wins (hardware columns, power gating) the
per-byte cost cannot see.  The cost model is decisive on the remaining
tier: NFA versus the DFA added by this module, following the UVA
DFA-vs-NFA study (PAPERS.md) — subset-constructed DFAs win on
low-activity patterns where one table lookup replaces the whole mask
stack, and lose on dense patterns whose subsets blow past the state
budget or live far from the prefilterable start state.

Every threshold constant the compiler uses lives here (re-homed from the
modules that used to duplicate them), as does the ``RAP_MODE``
environment override.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.automata.dfa import DFABlowupError, determinize
from repro.automata.glushkov import build_automaton
from repro.compiler.program import CompiledMode, CompileError
from repro.regex.ast import Lit, Regex, Repeat
from repro.regex.charclass import ALPHABET_SIZE
from repro.regex.rewrite import (
    RewriteError,
    linearize,
    make_countable,
    unfold,
)

# -- threshold constants (the compiler's single source of truth) --------------

#: Bounded repetitions up to this size unfold in place instead of counting.
DEFAULT_UNFOLD_THRESHOLD = 8

#: Default bit-vector pipeline depth for NBVA mode (Section 5.3 knob).
DEFAULT_BV_DEPTH = 16

#: LNFA linearization may grow the state count by at most this factor.
DEFAULT_LNFA_BLOWUP = 2.0

#: Upper bound on linearized sequences per regex.
DEFAULT_MAX_LNFA_SEQUENCES = 4096

#: Subset construction aborts past this many DFA states (the paper's
#: Section 2.1 blowup guard); such regexes stay NFAs.
DFA_STATE_BUDGET = 256

#: Don't even attempt determinization past this many unfolded NFA states:
#: the subset count is at least the longest simple path, so huge sources
#: can't fit the budget anyway and the attempt would only burn compile
#: time.
DFA_MAX_SOURCE_STATES = 512

# -- calibrated per-mode byte costs -------------------------------------------
#
# Units are "relative work per input byte" on the fused backend; only the
# NFA-vs-DFA comparison is decisive, so the absolute scale is arbitrary.
# Calibration anchors (benchmarks/test_dfa_speed.py pins the first):
#
# * low-activity keyword-ish patterns (predicted activity ~1/256) must
#   pick DFA: the lookup replaces the shift-mask-AND + gather stack;
# * dense patterns ("a(?:b.*|c)d", activity ~0.2) must stay NFA: hot
#   subsets keep the DFA away from its prefilterable start state and the
#   larger table loses locality, which the density term models.

#: NFA: fixed shift-mask-AND recurrence per byte...
C_NFA_BASE = 1.0
#: ...plus gather work proportional to the expected live-state count.
C_NFA_ACTIVE = 0.6
#: DFA: one translated[i] -> next_state table lookup per byte.
C_DFA_LOOKUP = 0.4
#: DFA: density penalty per expected live subset weight (table locality
#: and lost prefilter skips).
C_DFA_DENSITY = 1.0
#: NBVA: counter updates on a compressed automaton.
C_NBVA_BASE = 0.9
#: LNFA: per 64-bit lane word of the shared Shift-And machine.
C_LNFA_WORD = 0.3

# -- measured constants (``rap calibrate``) -----------------------------------

#: Version of the persisted calibration payload; bumping it orphans
#: every stored calibration (treated as "never calibrated").
CALIBRATION_VERSION = 1

#: Measured constants outside this range are implausible (a degenerate
#: micro-benchmark, clock glitch, or corrupted blob) and are clamped.
CONSTANT_RANGE = (0.01, 100.0)


@dataclass(frozen=True)
class CostConstants:
    """The six per-byte cost anchors, with their provenance.

    The hand-tuned module constants above remain the documented
    defaults; ``rap calibrate`` measures backend-specific replacements
    and persists them in the compile cache, from which
    :func:`active_constants` loads them for every subsequent compile.
    Only the NFA-vs-DFA comparison is decisive, so everything is
    normalized to ``nfa_base == 1.0`` regardless of absolute speed.
    """

    nfa_base: float = C_NFA_BASE
    nfa_active: float = C_NFA_ACTIVE
    dfa_lookup: float = C_DFA_LOOKUP
    dfa_density: float = C_DFA_DENSITY
    nbva_base: float = C_NBVA_BASE
    lnfa_word: float = C_LNFA_WORD
    #: ``"default"`` (hand-tuned anchors) or ``"measured"``.
    source: str = "default"
    #: The backend the measured constants were calibrated on.
    backend: str = ""

    def numbers(self) -> dict[str, float]:
        """The six numeric anchors by name (persistence/display)."""
        return {
            "nfa_base": self.nfa_base,
            "nfa_active": self.nfa_active,
            "dfa_lookup": self.dfa_lookup,
            "dfa_density": self.dfa_density,
            "nbva_base": self.nbva_base,
            "lnfa_word": self.lnfa_word,
        }


DEFAULT_CONSTANTS = CostConstants()


def calibration_blob_name(backend: str) -> str:
    """Cache-blob name for one backend's measured constants."""
    return f"costmodel-{backend}"


# In-process memo of loaded calibrations, keyed by (cache root,
# backend).  ``rap calibrate`` and tests that rewrite the blob call
# :func:`invalidate_constants_cache` to force a re-read.
_ACTIVE: dict[tuple[str, str], CostConstants] = {}


def invalidate_constants_cache() -> None:
    """Drop memoized calibrations (after ``rap calibrate`` or in tests)."""
    _ACTIVE.clear()


def _clamp(value: float) -> float:
    lo, hi = CONSTANT_RANGE
    return min(max(float(value), lo), hi)


def active_constants(backend: str | None = None) -> CostConstants:
    """The cost constants in force: measured if calibrated, else default.

    Reads the per-backend calibration blob from the compile cache
    (``$RAP_CACHE_DIR``-aware); any malformed, version-skewed, or
    non-finite payload degrades to :data:`DEFAULT_CONSTANTS` — a stale
    calibration must never fail a compile.
    """
    # Lazy imports: the cache module imports the compiler package, so a
    # module-level import here would be circular.
    from repro.core import resolve_backend
    from repro.engine.cache import CompileCache, default_cache_dir

    resolved = backend if backend is not None else resolve_backend()
    key = (str(default_cache_dir()), resolved)
    found = _ACTIVE.get(key)
    if found is not None:
        return found
    constants = DEFAULT_CONSTANTS
    try:
        payload = CompileCache().get_blob(calibration_blob_name(resolved))
    except OSError:
        payload = None
    if (
        isinstance(payload, dict)
        and payload.get("version") == CALIBRATION_VERSION
        and isinstance(payload.get("constants"), dict)
    ):
        raw = payload["constants"]
        try:
            numbers = {
                name: _clamp(raw[name])
                for name in DEFAULT_CONSTANTS.numbers()
            }
        except (KeyError, TypeError, ValueError):
            numbers = None
        if numbers is not None and all(
            math.isfinite(v) for v in numbers.values()
        ):
            constants = CostConstants(
                **numbers, source="measured", backend=resolved
            )
    _ACTIVE[key] = constants
    return constants

# -- mode override ------------------------------------------------------------

MODE_ENV = "RAP_MODE"

#: User-facing mode names (CLI ``--mode`` / ``RAP_MODE`` values).
MODE_CHOICES = ("auto", "nfa", "dfa", "nbva", "lnfa")


def resolve_mode(explicit: str | None = None) -> str:
    """The effective mode-selection policy: explicit > ``RAP_MODE`` > auto.

    An explicitly passed unknown name raises; an unknown ``RAP_MODE``
    value quietly resolves to ``auto`` (a stale environment must not
    break a run) — the same contract as ``RAP_BACKEND``.
    """
    if explicit is not None:
        name = explicit.strip().lower()
        if name not in MODE_CHOICES:
            raise ValueError(
                f"unknown mode {explicit!r}; choose from {MODE_CHOICES}"
            )
        if name != "auto":
            return name
    env = os.environ.get(MODE_ENV, "").strip().lower()
    if env in MODE_CHOICES:
        return env
    return "auto"


def mode_override(name: str | None) -> CompiledMode | None:
    """Map a resolved mode name onto a CompiledMode (``auto`` -> None)."""
    resolved = resolve_mode(name)
    if resolved == "auto":
        return None
    return CompiledMode(resolved.upper())


# -- feature extraction -------------------------------------------------------


@dataclass(frozen=True)
class ModeFeatures:
    """Static per-regex features the cost model scores.

    ``predicted_activity`` is the mean label density over the regex's
    literal positions (popcount of the character-class mask over the
    alphabet size) — a static proxy for the expected fraction of bytes
    that keep some state alive.  ``class_fanout`` counts distinct label
    masks: the number of alphabet-equivalence classes this regex
    contributes to the fused backend's class map.  ``dfa_states`` is the
    subset-construction size under :data:`DFA_STATE_BUDGET`, or ``None``
    when the regex is DFA-ineligible (anchored, oversized source, or
    subset blowup).
    """

    source_states: int
    unfolded_states: int
    predicted_activity: float
    class_fanout: int
    dfa_states: int | None
    nbva_eligible: bool
    lnfa_eligible: bool
    anchored: bool

    @property
    def dfa_eligible(self) -> bool:
        """Did subset construction fit the state budget?"""
        return self.dfa_states is not None


def predicted_activity(regex: Regex) -> float:
    """Mean label density over the regex's literal positions."""
    densities = [
        node.cc.mask.bit_count() / ALPHABET_SIZE
        for node in regex.walk()
        if isinstance(node, Lit)
    ]
    if not densities:
        return 0.0
    return sum(densities) / len(densities)


def class_fanout(regex: Regex) -> int:
    """Distinct label masks (alphabet-equivalence classes contributed)."""
    return len(
        {node.cc.mask for node in regex.walk() if isinstance(node, Lit)}
    )


def nbva_eligible(regex: Regex, *, unfold_threshold: int) -> bool:
    """Does at least one countable repetition survive the rewritings?"""
    try:
        prepared = make_countable(unfold(regex, unfold_threshold))
    except RewriteError:
        return False
    return any(isinstance(node, Repeat) for node in prepared.walk())


def lnfa_eligible(
    regex: Regex, *, lnfa_blowup: float, max_lnfa_sequences: int
) -> bool:
    """Does linearization succeed within the blowup allowance?"""
    base_states = max(regex.unfolded_size(), 1)
    return (
        linearize(
            regex,
            max_states=int(base_states * lnfa_blowup),
            max_sequences=max_lnfa_sequences,
        )
        is not None
    )


def dfa_state_count(
    regex: Regex,
    *,
    anchored: bool,
    dfa_state_budget: int = DFA_STATE_BUDGET,
) -> int | None:
    """Subset-construction size within the budget, else ``None``.

    Anchored regexes are excluded: the scanning determinization bakes
    the *unanchored* restart semantics into every subset, which is
    exactly what makes the DFA state after byte ``i`` equal the NFA
    active set after byte ``i`` — an anchored automaton has a different
    injection pattern and stays on the NFA path.
    """
    if anchored:
        return None
    if regex.unfolded_size() > DFA_MAX_SOURCE_STATES:
        return None
    automaton = build_automaton(regex, counters=False)
    try:
        dfa = determinize(automaton, max_states=dfa_state_budget)
    except DFABlowupError:
        return None
    return dfa.state_count


def extract_features(
    regex: Regex,
    *,
    unfold_threshold: int = DEFAULT_UNFOLD_THRESHOLD,
    lnfa_blowup: float = DEFAULT_LNFA_BLOWUP,
    max_lnfa_sequences: int = DEFAULT_MAX_LNFA_SEQUENCES,
    dfa_state_budget: int = DFA_STATE_BUDGET,
    anchored_start: bool = False,
    anchored_end: bool = False,
) -> ModeFeatures:
    """All static features of one parsed regex."""
    anchored = anchored_start or anchored_end
    return ModeFeatures(
        source_states=regex.literal_count(),
        unfolded_states=regex.unfolded_size(),
        predicted_activity=predicted_activity(regex),
        class_fanout=class_fanout(regex),
        dfa_states=dfa_state_count(
            regex, anchored=anchored, dfa_state_budget=dfa_state_budget
        ),
        nbva_eligible=nbva_eligible(regex, unfold_threshold=unfold_threshold),
        lnfa_eligible=lnfa_eligible(
            regex,
            lnfa_blowup=lnfa_blowup,
            max_lnfa_sequences=max_lnfa_sequences,
        ),
        anchored=anchored,
    )


# -- per-mode predicted costs -------------------------------------------------


def mode_costs(
    features: ModeFeatures, constants: CostConstants | None = None
) -> dict[str, float]:
    """Predicted per-byte cost of each mode; ineligible modes are inf.

    ``constants`` defaults to :func:`active_constants`: the hand-tuned
    anchors until ``rap calibrate`` has stored measured replacements
    for the resolved backend.
    """
    c = constants if constants is not None else active_constants()
    p = features.predicted_activity
    costs = {
        "nfa": c.nfa_base + c.nfa_active * p * features.unfolded_states
    }
    if features.dfa_states is not None:
        costs["dfa"] = c.dfa_lookup + c.dfa_density * p * features.dfa_states
    else:
        costs["dfa"] = math.inf
    if features.nbva_eligible:
        costs["nbva"] = c.nbva_base + c.nfa_active * p * features.source_states
    else:
        costs["nbva"] = math.inf
    if features.lnfa_eligible:
        words = max(1, -(-features.unfolded_states // 64))
        costs["lnfa"] = c.lnfa_word * words
    else:
        costs["lnfa"] = math.inf
    return costs


# -- the plan -----------------------------------------------------------------


@dataclass(frozen=True)
class DecisionTrace:
    """One regex's mode decision, structured for display and tests."""

    features: ModeFeatures
    costs: dict[str, float]
    mode: CompiledMode
    reason: str

    def eligibility(self) -> dict[str, bool]:
        """Mode name -> was the mode available for this regex?"""
        return {
            "nfa": True,
            "dfa": self.features.dfa_eligible,
            "nbva": self.features.nbva_eligible,
            "lnfa": self.features.lnfa_eligible,
        }


@dataclass(frozen=True)
class ModePlan:
    """The chosen execution mode plus the trace behind it."""

    mode: CompiledMode
    trace: DecisionTrace


def plan_mode(
    regex: Regex,
    *,
    unfold_threshold: int = DEFAULT_UNFOLD_THRESHOLD,
    lnfa_blowup: float = DEFAULT_LNFA_BLOWUP,
    max_lnfa_sequences: int = DEFAULT_MAX_LNFA_SEQUENCES,
    dfa_state_budget: int = DFA_STATE_BUDGET,
    mode_override: CompiledMode | None = None,
    anchored_start: bool = False,
    anchored_end: bool = False,
) -> ModePlan:
    """Score one parsed regex and choose its execution mode.

    ``mode_override`` is the *soft* preference behind ``--mode`` /
    ``RAP_MODE``: the requested mode wins when the regex is eligible for
    it, and the normal selection applies otherwise — so forcing ``dfa``
    across a whole suite degrades gracefully on anchored or blowup-prone
    regexes instead of failing them.  (The compiler's strict
    ``forced_mode`` keeps its raise-on-ineligible contract.)
    """
    if regex.nullable():
        raise CompileError(
            "nullable regex matches the empty string everywhere; "
            "not a meaningful hardware pattern"
        )
    features = extract_features(
        regex,
        unfold_threshold=unfold_threshold,
        lnfa_blowup=lnfa_blowup,
        max_lnfa_sequences=max_lnfa_sequences,
        dfa_state_budget=dfa_state_budget,
        anchored_start=anchored_start,
        anchored_end=anchored_end,
    )
    costs = mode_costs(features)

    if mode_override is not None:
        eligible = {
            CompiledMode.NFA: True,
            CompiledMode.DFA: features.dfa_eligible,
            CompiledMode.NBVA: features.nbva_eligible,
            CompiledMode.LNFA: features.lnfa_eligible,
        }[mode_override]
        if eligible:
            trace = DecisionTrace(
                features=features,
                costs=costs,
                mode=mode_override,
                reason=f"override: {mode_override.value.lower()} requested "
                "and eligible",
            )
            return ModePlan(mode=mode_override, trace=trace)
        # Ineligible override: fall through to the normal selection.

    if features.nbva_eligible:
        mode = CompiledMode.NBVA
        reason = "countable repetition survives the rewritings"
    elif features.lnfa_eligible:
        mode = CompiledMode.LNFA
        reason = "linearizable within the blowup allowance"
    elif features.dfa_eligible and costs["dfa"] < costs["nfa"]:
        mode = CompiledMode.DFA
        reason = (
            f"cost model: dfa {costs['dfa']:.3f} < nfa {costs['nfa']:.3f} "
            f"per byte ({features.dfa_states} DFA states, "
            f"activity {features.predicted_activity:.4f})"
        )
    else:
        mode = CompiledMode.NFA
        if features.dfa_eligible:
            reason = (
                f"cost model: nfa {costs['nfa']:.3f} <= dfa "
                f"{costs['dfa']:.3f} per byte (dense pattern)"
            )
        elif features.anchored:
            reason = "anchored: DFA tier requires unanchored scanning"
        else:
            reason = (
                f"DFA subset construction blew the {dfa_state_budget}-state "
                "budget"
            )
    trace = DecisionTrace(
        features=features, costs=costs, mode=mode, reason=reason
    )
    return ModePlan(mode=mode, trace=trace)
