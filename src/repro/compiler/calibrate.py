"""``rap calibrate``: measure the cost model's per-byte anchors.

The six constants in :mod:`repro.compiler.costmodel` were hand-tuned
against the fused backend; with the native compiled tier in the picture
the NFA-vs-DFA crossover moves (a table lookup is relatively cheaper
once the mask stack is specialized C).  This module replaces the
hand-tuned anchors with *measured* ones: it times forced-mode scans of
small probe rulesets on the resolved backend, solves the cost model's
own linear forms for the constants, and persists them per backend in
the compile cache (the same checksummed envelope discipline as compiled
rulesets).  :func:`~repro.compiler.costmodel.active_constants` then
serves the measured values to every subsequent compile on that backend.

The probes exploit that each mode's predicted cost is affine in one
feature product ``x``:

* NFA: ``t/byte = u * (nfa_base + nfa_active * x)`` with
  ``x = activity * unfolded_states`` — two probes of different ``x``
  give slope and intercept, and ``u`` (the unit: seconds per cost
  point) is pinned by normalizing ``nfa_base`` to 1.0.
* DFA: same two-point solve over ``x = activity * dfa_states`` for
  ``dfa_lookup`` and ``dfa_density``.
* NBVA: one probe; ``nbva_base = t/(u) - nfa_active * x``.
* LNFA: one 64-keyword probe; ``lnfa_word = t / (u * lanes)`` where
  ``lanes`` is the packed machine's 64-bit word count.

Degenerate measurements (non-positive slopes or intercepts — noise on
a probe too fast to time) fall back to the hand-tuned default for that
constant, and everything is clamped to
:data:`~repro.compiler.costmodel.CONSTANT_RANGE`; a bad calibration
run can skew mode selection but never crash a compile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.compiler import CompilerConfig, compile_ruleset
from repro.compiler.costmodel import (
    CALIBRATION_VERSION,
    CONSTANT_RANGE,
    DEFAULT_CONSTANTS,
    CostConstants,
    calibration_blob_name,
    extract_features,
    invalidate_constants_cache,
)
from repro.compiler.program import CompiledMode
from repro.hardware.config import DEFAULT_CONFIG
from repro.regex.parser import parse_anchored
from repro.workloads.inputs import generate_input

#: Default probe stream length; large enough to dominate per-scan
#: setup, small enough that the whole calibration stays interactive.
DEFAULT_PROBE_BYTES = 131_072

#: Timing repeats per probe (minimum is taken: noise is one-sided).
DEFAULT_REPEATS = 3

# Probe patterns, chosen so the feature products the solver divides by
# are well separated.  Every probe is validated for mode eligibility at
# runtime — a compiler change that rejects one degrades that constant
# to its default instead of failing the calibration.
NFA_SPARSE = "kqzvwxjy"
NFA_DENSE = "[a-p][a-p][a-p][a-p][a-p][a-p][a-p][a-p]"
DFA_SPARSE = "abcd"
DFA_DENSE = "[a-h][a-h][a-h][a-h][a-h][a-h]"
NBVA_PROBE = "ab{12}c"
LNFA_KEYWORDS = 64


@dataclass(frozen=True)
class CalibrationReport:
    """One calibration run: the constants plus the raw evidence."""

    backend: str
    constants: CostConstants
    #: Probe label -> measured seconds per input byte.
    measurements: dict[str, float]
    probe_bytes: int


def _lnfa_keywords(count: int = LNFA_KEYWORDS) -> list[str]:
    import random

    rng = random.Random(7)
    words: set[str] = set()
    while len(words) < count:
        length = rng.randint(5, 8)
        words.add(
            "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz")
                for _ in range(length)
            )
        )
    return sorted(words)


def _probe_stream(patterns: list[str], length: int) -> bytes:
    return generate_input(
        "network", length, seed=29, patterns=patterns, plant_every=4096
    )


def _time_scan(
    patterns: list[str],
    mode: CompiledMode | None,
    length: int,
    repeats: int,
) -> float | None:
    """Min seconds-per-byte over ``repeats`` scans, or None if the
    forced compile rejects any probe pattern."""
    from repro.simulators.rap import RAPSimulator

    ruleset = compile_ruleset(patterns, CompilerConfig(forced_mode=mode))
    if ruleset.rejected or not len(ruleset):
        return None
    sim = RAPSimulator(DEFAULT_CONFIG)
    mapping = sim.build_mapping(ruleset)
    data = _probe_stream(patterns, length)
    sim.collect_activities(ruleset, data, mapping)  # warm (JIT/.so build)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sim.collect_activities(ruleset, data, mapping)
        best = min(best, time.perf_counter() - start)
    return best / max(1, length)


def _feature_x(pattern: str, *, dfa: bool = False) -> float | None:
    """The affine feature product the pattern's mode cost is linear in."""
    features = extract_features(parse_anchored(pattern).regex)
    if dfa:
        if features.dfa_states is None:
            return None
        return features.predicted_activity * features.dfa_states
    return features.predicted_activity * features.unfolded_states


def _two_point(
    t_sparse: float | None,
    t_dense: float | None,
    x_sparse: float | None,
    x_dense: float | None,
) -> tuple[float, float] | None:
    """(intercept, slope) of t = intercept + slope*x, else None."""
    if None in (t_sparse, t_dense, x_sparse, x_dense):
        return None
    if x_dense <= x_sparse:
        return None
    slope = (t_dense - t_sparse) / (x_dense - x_sparse)
    intercept = t_sparse - slope * x_sparse
    if intercept <= 0 or slope <= 0:
        return None
    return intercept, slope


def calibrate(
    backend: str | None = None,
    *,
    probe_bytes: int = DEFAULT_PROBE_BYTES,
    repeats: int = DEFAULT_REPEATS,
) -> CalibrationReport:
    """Measure the cost constants on one backend (default: resolved)."""
    from repro.core import resolve_backend, use_backend

    resolved = resolve_backend(backend)
    measurements: dict[str, float] = {}

    def probe(label, patterns, mode):
        t = _time_scan(patterns, mode, probe_bytes, repeats)
        if t is not None:
            measurements[label] = t
        return t

    with use_backend(resolved):
        t_ns = probe("nfa_sparse", [NFA_SPARSE], CompiledMode.NFA)
        t_nd = probe("nfa_dense", [NFA_DENSE], CompiledMode.NFA)
        t_ds = probe("dfa_sparse", [DFA_SPARSE], CompiledMode.DFA)
        t_dd = probe("dfa_dense", [DFA_DENSE], CompiledMode.DFA)
        t_nb = probe("nbva", [NBVA_PROBE], CompiledMode.NBVA)
        lnfa_patterns = _lnfa_keywords()
        t_ln = probe("lnfa", lnfa_patterns, CompiledMode.LNFA)

    d = DEFAULT_CONSTANTS
    nfa_active, dfa_lookup, dfa_density = (
        d.nfa_active, d.dfa_lookup, d.dfa_density,
    )
    nbva_base, lnfa_word = d.nbva_base, d.lnfa_word

    # The unit u converts seconds/byte into cost points: by definition
    # nfa_base is 1.0, so u is the NFA fit's intercept (or, degenerate,
    # the sparse-probe time itself — every other constant then scales
    # against "one sparse NFA byte").
    nfa_fit = _two_point(
        t_ns, t_nd, _feature_x(NFA_SPARSE), _feature_x(NFA_DENSE)
    )
    if nfa_fit is not None:
        unit, slope = nfa_fit
        nfa_active = slope / unit
    elif t_ns is not None and t_ns > 0:
        unit = t_ns
    else:
        unit = None

    if unit is not None:
        dfa_fit = _two_point(
            t_ds,
            t_dd,
            _feature_x(DFA_SPARSE, dfa=True),
            _feature_x(DFA_DENSE, dfa=True),
        )
        if dfa_fit is not None:
            dfa_lookup = dfa_fit[0] / unit
            dfa_density = dfa_fit[1] / unit
        elif t_ds is not None:
            dfa_lookup = t_ds / unit

        if t_nb is not None:
            features = extract_features(parse_anchored(NBVA_PROBE).regex)
            x = features.predicted_activity * features.source_states
            measured = t_nb / unit - nfa_active * x
            if measured > 0:
                nbva_base = measured

        if t_ln is not None:
            total_states = sum(
                extract_features(parse_anchored(p).regex).unfolded_states
                for p in lnfa_patterns
            )
            lanes = max(1, -(-total_states // 64))
            measured = t_ln / (unit * lanes)
            if measured > 0:
                lnfa_word = measured

    lo, hi = CONSTANT_RANGE

    def clamp(value: float) -> float:
        return round(min(max(value, lo), hi), 4)

    constants = CostConstants(
        nfa_base=1.0,
        nfa_active=clamp(nfa_active),
        dfa_lookup=clamp(dfa_lookup),
        dfa_density=clamp(dfa_density),
        nbva_base=clamp(nbva_base),
        lnfa_word=clamp(lnfa_word),
        source="measured",
        backend=resolved,
    )
    return CalibrationReport(
        backend=resolved,
        constants=constants,
        measurements=measurements,
        probe_bytes=probe_bytes,
    )


def save_calibration(report: CalibrationReport, cache=None) -> None:
    """Persist measured constants for the report's backend."""
    from repro.engine.cache import CompileCache

    cache = cache if cache is not None else CompileCache()
    cache.put_blob(
        calibration_blob_name(report.backend),
        {
            "version": CALIBRATION_VERSION,
            "backend": report.backend,
            "constants": report.constants.numbers(),
            "measurements": report.measurements,
            "probe_bytes": report.probe_bytes,
        },
    )
    invalidate_constants_cache()
