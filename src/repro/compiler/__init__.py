"""The regex-to-hardware compiler (Section 4).

Compilation of one regex proceeds through the Fig. 9 decision graph
(:mod:`repro.compiler.decision`) into one of three mode-specific backends:

* :mod:`repro.compiler.nbva_compiler` — unfolding, counting-compatibility
  and bounded-repetition rewriting, tile splitting, NBVA construction;
* :mod:`repro.compiler.lnfa_compiler` — linearization into character-class
  sequences and Shift-And mask preparation;
* :mod:`repro.compiler.nfa_compiler` — full unfolding and the classical
  Glushkov construction.

:mod:`repro.compiler.pipeline` drives the whole flow and produces the
:class:`~repro.compiler.program.CompiledRuleset` consumed by the mapper
and the simulators.
"""

from repro.compiler.pipeline import (
    CompilerConfig,
    ExplainEntry,
    compile_pattern,
    compile_ruleset,
    explain_patterns,
)
from repro.compiler.program import (
    CapacityError,
    CompiledMode,
    CompiledRegex,
    CompiledRuleset,
    CompileError,
    TileRequest,
)

__all__ = [
    "CapacityError",
    "CompileError",
    "CompiledMode",
    "CompiledRegex",
    "CompiledRuleset",
    "CompilerConfig",
    "ExplainEntry",
    "TileRequest",
    "compile_pattern",
    "compile_ruleset",
    "explain_patterns",
]
