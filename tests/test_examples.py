"""Every example script must run clean end to end (they are documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3, "the library promises at least three examples"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"


def test_quickstart_reports_expected_matches():
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert "NBVA" in result.stdout and "LNFA" in result.stdout
    assert "Matches" in result.stdout
