"""Failure-injection tests: every guard fires loudly, never silently."""

import pytest

from repro.automata.glushkov import (
    Automaton,
    CounterGroup,
    Edge,
    EdgeAction,
    GlushkovError,
    Position,
    ReadKind,
)
from repro.hardware.config import DEFAULT_CONFIG
from repro.mapping.binning import Bin, BinItem, BinKind
from repro.regex.charclass import CharClass
from repro.regex.parser import parse


def _pos(pid, cc="a", group=None):
    return Position(pid=pid, cc=CharClass.of(cc), group=group)


class TestAutomatonValidation:
    def base(self, **overrides):
        fields = dict(
            positions=(_pos(0), _pos(1)),
            edges=(Edge(0, 1, EdgeAction.ACTIVATE),),
            groups=(),
            initial=frozenset({0}),
            finals=frozenset({1}),
            nullable=False,
        )
        fields.update(overrides)
        return Automaton(**fields)

    def test_valid_passes(self):
        self.base().validate()

    def test_edge_out_of_range(self):
        bad = self.base(edges=(Edge(0, 9, EdgeAction.ACTIVATE),))
        with pytest.raises(GlushkovError):
            bad.validate()

    def test_position_id_mismatch(self):
        bad = self.base(positions=(_pos(0), _pos(7)))
        with pytest.raises(GlushkovError):
            bad.validate()

    def test_copy_between_plain_states(self):
        bad = self.base(edges=(Edge(0, 1, EdgeAction.COPY),))
        with pytest.raises(GlushkovError):
            bad.validate()

    def test_set1_into_plain_state(self):
        bad = self.base(edges=(Edge(0, 1, EdgeAction.SET1),))
        with pytest.raises(GlushkovError):
            bad.validate()

    def test_activate_into_counted_state(self):
        bad = self.base(
            positions=(_pos(0), _pos(1, group=0)),
            groups=(
                CounterGroup(
                    gid=0,
                    width=4,
                    read=ReadKind.EXACT,
                    read_bound=4,
                    positions=(1,),
                ),
            ),
            edges=(Edge(0, 1, EdgeAction.ACTIVATE),),
        )
        with pytest.raises(GlushkovError):
            bad.validate()

    def test_exact_group_bound_must_equal_width(self):
        bad = self.base(
            positions=(_pos(0), _pos(1, group=0)),
            groups=(
                CounterGroup(
                    gid=0,
                    width=4,
                    read=ReadKind.EXACT,
                    read_bound=3,
                    positions=(1,),
                ),
            ),
            edges=(Edge(0, 1, EdgeAction.SET1),),
        )
        with pytest.raises(GlushkovError):
            bad.validate()

    def test_group_membership_consistency(self):
        bad = self.base(
            positions=(_pos(0), _pos(1)),  # position 1 not tagged
            groups=(
                CounterGroup(
                    gid=0,
                    width=4,
                    read=ReadKind.ALL,
                    read_bound=4,
                    positions=(1,),
                ),
            ),
        )
        with pytest.raises(GlushkovError):
            bad.validate()


class TestBinRetargeting:
    def items(self, cam=True):
        from repro.automata.lnfa import LNFA

        lnfa = LNFA((CharClass.of("a"), CharClass.of("b")))
        return (
            BinItem(regex_id=0, lnfa_index=0, lnfa=lnfa, cam_eligible=cam),
        )

    def test_retarget_to_same_kind_is_identity(self):
        bin_obj = Bin(kind=BinKind.CAM, items=self.items(), tiles=1)
        assert bin_obj.retargeted(BinKind.CAM, DEFAULT_CONFIG) is bin_obj

    def test_retarget_ineligible_to_cam_rejected(self):
        bin_obj = Bin(
            kind=BinKind.SWITCH, items=self.items(cam=False), tiles=1
        )
        with pytest.raises(ValueError):
            bin_obj.retargeted(BinKind.CAM, DEFAULT_CONFIG)

    def test_retarget_recomputes_tiles(self):
        from repro.automata.lnfa import LNFA

        long = LNFA(tuple(CharClass.of("a") for _ in range(100)))
        items = (
            BinItem(regex_id=0, lnfa_index=0, lnfa=long, cam_eligible=True),
        )
        cam_bin = Bin(kind=BinKind.CAM, items=items, tiles=1)
        switch_bin = cam_bin.retargeted(BinKind.SWITCH, DEFAULT_CONFIG)
        assert switch_bin.tiles == 2  # 100 states at 64/tile


class TestMetricsDegenerates:
    def test_zero_clock(self):
        from repro.hardware.energy import Metrics

        m = Metrics(
            energy_uj=1.0,
            area_mm2=1.0,
            cycles=10,
            input_symbols=10,
            clock_ghz=0.0,
        )
        assert m.time_s == 0.0
        assert m.power_w == 0.0

    def test_zero_area(self):
        from repro.hardware.energy import Metrics

        m = Metrics(
            energy_uj=1.0,
            area_mm2=0.0,
            cycles=10,
            input_symbols=10,
            clock_ghz=2.0,
        )
        assert m.compute_density_gchps_per_mm2 == 0.0


class TestSimulatorGuards:
    def test_rap_empty_ruleset(self):
        from repro.compiler.program import CompiledRuleset
        from repro.simulators import RAPSimulator

        result = RAPSimulator().run(CompiledRuleset(regexes=()), b"abc")
        assert result.matches == {}
        assert result.tiles == 0

    def test_bvap_oversized_regex(self):
        from repro.compiler import CompiledMode, CompilerConfig, compile_pattern
        from repro.compiler.program import CompiledRuleset
        from repro.simulators import BVAPSimulator

        # 2049+ CC columns cannot fit one BVAP array
        big = compile_pattern(
            "a" * 2060 + "b{100}",
            0,
            CompilerConfig(bv_depth=4),
        )
        assert big.mode is CompiledMode.NBVA
        with pytest.raises(ValueError):
            BVAPSimulator().run(CompiledRuleset(regexes=(big,)), b"x")


class TestParserGuardRails:
    def test_deeply_nested_groups_parse(self):
        pattern = "(" * 40 + "a" + ")" * 40
        assert parse(pattern).to_pattern() == "a"

    def test_class_with_all_bytes(self):
        node = parse("[\\x00-\\xff]")
        assert node.cc.is_any()


class TestErrorTaxonomy:
    def test_hierarchy_keeps_legacy_handlers_working(self):
        from repro.errors import (
            CapacityError,
            CompileError,
            ReproError,
            TaskTimeoutError,
        )

        # Pre-taxonomy call sites catch ValueError / TimeoutError.
        assert issubclass(CompileError, ValueError)
        assert issubclass(CapacityError, CompileError)
        assert issubclass(TaskTimeoutError, TimeoutError)
        assert issubclass(CapacityError, ReproError)

    def test_context_reports_only_set_fields(self):
        from repro.errors import CompileError

        err = CompileError("nope", pattern="a(", pattern_index=3)
        assert err.context() == {"pattern": "a(", "pattern_index": 3}

    def test_context_survives_pickling(self):
        import pickle

        from repro.errors import TaskTimeoutError

        err = TaskTimeoutError(
            "deadline", unit=("regex", 4), attempts=3, phase="execute"
        )
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is TaskTimeoutError
        assert str(back) == "deadline"
        assert back.context() == err.context()

    def test_capacity_overflow_raises_capacity_error(self):
        from repro.compiler import CompilerConfig, compile_pattern
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            compile_pattern("abc" + "(x|y)" * 1200, 0, CompilerConfig())

    def test_compile_ruleset_annotates_rejections(self):
        from repro.compiler import CompilerConfig, compile_ruleset
        from repro.errors import CompileError

        ruleset = compile_ruleset(["ok", "a("], CompilerConfig())
        (cause,) = ruleset.rejected_errors
        assert isinstance(cause, CompileError)
        assert cause.pattern == "a("
        assert cause.pattern_index == 1
        assert cause.phase == "compile"

    def test_on_error_policy_validation(self):
        from repro.errors import ON_ERROR_POLICIES, validate_on_error

        for policy in ON_ERROR_POLICIES:
            assert validate_on_error(policy) == policy
        with pytest.raises(ValueError):
            validate_on_error("ignore")


class TestQuarantineReport:
    def entries(self):
        from repro.errors import QuarantineEntry

        return (
            QuarantineEntry(
                phase="compile",
                error="unbalanced parenthesis",
                error_type="CompileError",
                pattern="a(",
                pattern_index=0,
            ),
            QuarantineEntry(
                phase="execute",
                error="worker crashed",
                error_type="WorkerCrashError",
                task_index=2,
                attempts=3,
            ),
        )

    def test_report_shape(self):
        from repro.errors import QuarantineReport

        report = QuarantineReport(self.entries())
        assert len(report) == 2
        assert bool(report)
        assert report.patterns() == ("a(",)
        assert [e.phase for e in report.by_phase("execute")] == ["execute"]
        assert not QuarantineReport()

    def test_describe_names_every_offender(self):
        from repro.errors import QuarantineReport

        text = QuarantineReport(self.entries()).describe()
        assert "2 entries" in text
        assert "pattern 'a('" in text
        assert "task 2" in text
        assert "WorkerCrashError" in text
