"""Differential kernel tests: NumPy must be bit-identical to pure Python.

The backend contract (see :mod:`repro.core.registry`) is that kernels
only change speed, never results: the same program over the same bytes
yields the same match events and the same exact integer
:class:`~repro.core.StepStats` on every backend.  Hypothesis drives all
three program kinds (GATHER from Glushkov NFAs, SHIFT_LEFT from packed
Shift-And layouts, SHIFT_RIGHT from the bit-serial datapath) through
both kernels, including anchoring combinations and warm-up offsets.

The whole module skips cleanly when NumPy is not installed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.bitserial import BitSerialLNFA
from repro.automata.glushkov import build_automaton
from repro.automata.nfa import NFASimulator, StepStats
from repro.automata.shift_and import MultiShiftAnd, ShiftAnd
from repro.core import available_backends, get_kernel, use_backend
from repro.regex.parser import parse
from repro.regex.rewrite import unfold_all

from tests.automata.test_lnfa import lnfa_strategy
from tests.helpers import inputs, regex_trees

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="NumPy backend not available",
)


def assert_kernels_agree(program, data: bytes, stats_from: int = 0) -> None:
    py_events, py_stats = get_kernel("python").scan(
        program, data, stats_from=stats_from
    )
    np_events, np_stats = get_kernel("numpy").scan(
        program, data, stats_from=stats_from
    )
    assert np_events == py_events
    assert np_stats == py_stats


anchor_flags = st.booleans()


class TestGatherPrograms:
    @settings(max_examples=120, deadline=None)
    @given(
        regex_trees(max_leaves=6),
        inputs(max_size=24),
        anchor_flags,
        anchor_flags,
        st.integers(0, 8),
    )
    def test_differential(self, tree, data, astart, aend, stats_from):
        sim = NFASimulator(build_automaton(unfold_all(tree)))
        program = sim.program(anchored_start=astart, anchored_end=aend)
        assert_kernels_agree(program, data, stats_from=stats_from)

    def test_empty_input(self):
        sim = NFASimulator(build_automaton(unfold_all(parse("ab*c"))))
        assert_kernels_agree(sim.program(), b"")

    def test_stats_from_past_the_end(self):
        sim = NFASimulator(build_automaton(unfold_all(parse("ab"))))
        assert_kernels_agree(sim.program(), b"abab", stats_from=99)


class TestShiftPrograms:
    @settings(max_examples=120, deadline=None)
    @given(
        lnfa_strategy(max_len=5),
        inputs(max_size=24),
        anchor_flags,
        anchor_flags,
        st.integers(0, 8),
    )
    def test_shift_left_differential(
        self, lnfa, data, astart, aend, stats_from
    ):
        program = ShiftAnd(lnfa).program(
            anchored_start=astart, anchored_end=aend
        )
        assert_kernels_agree(program, data, stats_from=stats_from)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(lnfa_strategy(max_len=4), min_size=1, max_size=4),
        inputs(max_size=20),
    )
    def test_packed_shift_left_differential(self, lnfas, data):
        # clear_after_shift (per-pattern boundary masking) only arises
        # in the packed multi-pattern layout.
        assert_kernels_agree(MultiShiftAnd(lnfas).program, data)

    @settings(max_examples=80, deadline=None)
    @given(
        lnfa_strategy(max_len=5),
        inputs(max_size=24),
        anchor_flags,
        anchor_flags,
    )
    def test_shift_right_differential(self, lnfa, data, astart, aend):
        engine = BitSerialLNFA(lnfa, anchored_start=astart)
        assert_kernels_agree(engine.program(anchored_end=aend), data)


class TestEndToEnd:
    @settings(max_examples=60, deadline=None)
    @given(regex_trees(max_leaves=6), inputs(max_size=24))
    def test_simulator_results_identical_across_backends(self, tree, data):
        sim = NFASimulator(build_automaton(unfold_all(tree)))
        results = {}
        for backend in ("python", "numpy"):
            stats = StepStats()
            with use_backend(backend):
                results[backend] = (sim.find_matches(data, stats), stats)
        assert results["python"] == results["numpy"]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(lnfa_strategy(max_len=4), min_size=1, max_size=4),
        inputs(max_size=20),
    )
    def test_packed_matcher_identical_across_backends(self, lnfas, data):
        matcher = MultiShiftAnd(lnfas)
        with use_backend("python"):
            py = matcher.find_matches(data)
        with use_backend("numpy"):
            np_ = matcher.find_matches(data)
        assert py == np_


class TestIterStates:
    @settings(max_examples=40, deadline=None)
    @given(lnfa_strategy(max_len=4), inputs(max_size=16))
    def test_iter_states_identical(self, lnfa, data):
        program = ShiftAnd(lnfa).program()
        py = list(get_kernel("python").iter_states(program, data))
        np_ = list(get_kernel("numpy").iter_states(program, data))
        assert py == np_


def test_long_cold_stream_with_sparse_hits():
    """The NumPy cold-skip path over a realistic mostly-idle stream."""
    sim = NFASimulator(build_automaton(unfold_all(parse("ab[cd]d"))))
    data = (b"x" * 997 + b"abcd") * 40 + b"a" * 100
    assert_kernels_agree(sim.program(), data)
    assert_kernels_agree(sim.program(), data, stats_from=1234)
