"""Fused-machine tests: class maps, lane packing, prefilter, LRU caches.

The fused backend's exactness rests on two mechanical claims, both
driven here by hypothesis:

* the lane-packed machine evolves every unit's projected state word
  bit-identically to a standalone scan of that unit (including the
  cross-unit shift-leak absorption at concatenation boundaries);
* the class-indexed gather scan reproduces the per-program kernel scan
  event-for-event and counter-for-counter.

The module also covers the two cache satellites (the bounded NumPy LUT
cache and label-table interning is covered in tests/regex) and the
prefilter's find-chain/LUT parity.  Skips cleanly without NumPy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.automata.glushkov import build_automaton
from repro.automata.nfa import NFASimulator
from repro.automata.shift_and import MultiShiftAnd
from repro.core import KernelState, available_backends, get_kernel
from repro.core import npkernel
from repro.core.fused import (
    AlphabetClasses,
    FusedRuleset,
    int_from_words,
    popcount_words,
    words_from_int,
)
from repro.core.registry import resolve_backend
from repro.regex.rewrite import unfold_all

from tests.automata.test_lnfa import lnfa_strategy
from tests.helpers import inputs, regex_trees

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="NumPy backend not available",
)


@st.composite
def shift_program_lists(draw, max_packs: int = 3):
    """Lists of packed multi-pattern SHIFT_LEFT programs with anchors."""
    programs = []
    for _ in range(draw(st.integers(1, max_packs))):
        lnfas = draw(st.lists(lnfa_strategy(max_len=4), min_size=1, max_size=3))
        anchors = draw(
            st.lists(
                st.tuples(st.booleans(), st.booleans()),
                min_size=len(lnfas),
                max_size=len(lnfas),
            )
        )
        programs.append(MultiShiftAnd(lnfas, anchors=anchors).program)
    return programs


def collect_rows(fused, data, state=0, *, fresh=True, at_end=True):
    """Run the lane machine, returning {position: packed_word} + end."""
    rows = {}

    def sink(positions, matrix):
        for pos, row in zip(positions.tolist(), matrix):
            rows[pos] = int_from_words(row)

    end = fused.lane_feed(
        fused.translate(data), state, fresh=fresh, at_end=at_end, sink=sink
    )
    return rows, end


class TestLanePacking:
    @settings(max_examples=100, deadline=None)
    @given(shift_program_lists(), inputs(max_size=28))
    def test_every_projected_state_matches_standalone_scan(
        self, programs, data
    ):
        fused = FusedRuleset(programs)
        rows, end = collect_rows(fused, data)
        kernel = get_kernel("python")
        for j, program in enumerate(programs):
            expected_last = 0
            for i, states in kernel.iter_states(program, data):
                assert fused.extract(rows.get(i, 0), j) == states
                expected_last = states
            assert fused.extract(end, j) == expected_last

    @settings(max_examples=60, deadline=None)
    @given(
        shift_program_lists(),
        inputs(max_size=28),
        st.integers(0, 28),
    )
    def test_segmented_feed_equals_whole_stream(self, programs, data, cut):
        cut = min(cut, len(data))
        fused = FusedRuleset(programs)
        whole_rows, whole_end = collect_rows(fused, data)
        first, state = collect_rows(fused, data[:cut], at_end=False)
        second, end = collect_rows(
            fused, data[cut:], state, fresh=cut == 0, at_end=True
        )
        stitched = dict(first)
        stitched.update({cut + i: word for i, word in second.items()})
        assert stitched == whole_rows
        assert end == whole_end

    def test_rejects_gather_programs_in_shift_slot(self):
        sim = NFASimulator(build_automaton(unfold_all_tree("ab")))
        with pytest.raises(ValueError, match="SHIFT_LEFT"):
            FusedRuleset([sim.program()])

    def test_pack_extract_roundtrip(self):
        programs = [
            MultiShiftAnd([make_lnfa("abc")]).program,
            MultiShiftAnd([make_lnfa("xy")]).program,
        ]
        fused = FusedRuleset(programs)
        states = [0b101, 0b11]
        packed = fused.pack(states)
        assert [fused.extract(packed, j) for j in range(2)] == states


class TestClassIndexedGather:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(regex_trees(max_leaves=5), min_size=1, max_size=3),
        st.lists(lnfa_strategy(max_len=4), min_size=0, max_size=2),
        inputs(max_size=24),
        st.booleans(),
        st.booleans(),
    )
    def test_scan_unit_matches_kernel_scan(
        self, trees, lnfas, data, astart, aend
    ):
        gathers = [
            NFASimulator(build_automaton(unfold_all(tree))).program(
                anchored_start=astart, anchored_end=aend
            )
            for tree in trees
        ]
        shifts = [MultiShiftAnd(lnfas).program] if lnfas else []
        fused = FusedRuleset(shifts, gathers)
        tin = fused.translate(data)
        kernel = get_kernel("python")
        for index, program in enumerate(gathers):
            expected = kernel.scan(program, data)
            assert fused.scan_unit(index, tin) == expected


class TestAlphabetClasses:
    def test_partition_refines_every_table(self):
        t1 = tuple(1 if b in b"ab" else 0 for b in range(256))
        t2 = tuple(2 if b in b"bc" else 0 for b in range(256))
        classes = AlphabetClasses([t1, t2])
        # a / b / c / everything-else: four distinguishable classes
        assert classes.k == 4
        for table in (t1, t2):
            projected = classes.project(table)
            for byte in range(256):
                assert projected[classes.class_of[byte]] == table[byte]

    def test_no_tables_collapses_to_one_class(self):
        classes = AlphabetClasses([])
        assert classes.k == 1
        assert set(classes.class_of) == {0}


class TestPrefilter:
    def _oracle(self, fused, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        return np.flatnonzero(fused._hot_lut[arr]).tolist()

    @settings(max_examples=80, deadline=None)
    @given(inputs(max_size=40))
    def test_find_chain_path_matches_lut_path(self, data):
        # Two literal patterns -> at most two hot byte values: the
        # bytes.find chain is selected and must be position-identical.
        fused = FusedRuleset(
            [MultiShiftAnd([make_lnfa("ab"), make_lnfa("ba")]).program]
        )
        assert len(fused._hot_bytes) <= 4
        assert fused._hot_positions(
            data, np.frombuffer(data, dtype=np.uint8)
        ) == self._oracle(fused, data)

    @settings(max_examples=40, deadline=None)
    @given(inputs(alphabet="abcdwxyz", max_size=40))
    def test_lut_path_positions(self, data):
        # A dotted head makes every byte hot -> the LUT path runs.
        fused = FusedRuleset([MultiShiftAnd([make_lnfa(".a")]).program])
        assert len(fused._hot_bytes) > 4
        assert fused._hot_positions(
            data, np.frombuffer(data, dtype=np.uint8)
        ) == self._oracle(fused, data)


class TestSignature:
    def test_stable_and_layout_sensitive(self):
        a = [MultiShiftAnd([make_lnfa("abc"), make_lnfa("xy")]).program]
        b = [MultiShiftAnd([make_lnfa("abc"), make_lnfa("xz")]).program]
        assert FusedRuleset(a).signature == FusedRuleset(a).signature
        assert FusedRuleset(a).signature != FusedRuleset(b).signature

    def test_gather_units_affect_signature(self):
        shifts = [MultiShiftAnd([make_lnfa("abc")]).program]
        gather = NFASimulator(build_automaton(unfold_all_tree("ab"))).program()
        assert (
            FusedRuleset(shifts).signature
            != FusedRuleset(shifts, [gather]).signature
        )


class TestWordHelpers:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, (1 << 200) - 1), st.integers(4, 6))
    def test_int_word_roundtrip(self, value, lanes):
        assert int_from_words(words_from_int(value, lanes)) == value

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=8))
    def test_popcount_words(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = [v.bit_count() for v in values]
        assert popcount_words(arr).tolist() == expected


class TestNpTablesCacheBound:
    """Satellite: the NumPy LUT cache must be bounded with LRU eviction."""

    def test_eviction_keeps_results_correct(self, monkeypatch):
        monkeypatch.setattr(npkernel, "_NP_TABLES_CAP", 3)
        monkeypatch.setattr(
            npkernel, "_np_tables_cache", type(npkernel._np_tables_cache)()
        )
        kernel = get_kernel("numpy")
        python = get_kernel("python")
        programs = [
            MultiShiftAnd([make_lnfa(text)]).program
            for text in ("ab", "cd", "xy", "pq", "mn")
        ]
        data = b"abcdxypqmnabcd"
        for program in programs:
            assert kernel.scan(program, data) == python.scan(program, data)
        assert len(npkernel._np_tables_cache) == 3
        # The oldest entries were evicted; rescanning them must rebuild
        # the tables and still agree with the oracle.
        for program in programs[:2]:
            assert program not in npkernel._np_tables_cache
            assert kernel.scan(program, data) == python.scan(program, data)
        assert len(npkernel._np_tables_cache) == 3

    def test_lru_hit_refreshes_recency(self, monkeypatch):
        monkeypatch.setattr(npkernel, "_NP_TABLES_CAP", 2)
        monkeypatch.setattr(
            npkernel, "_np_tables_cache", type(npkernel._np_tables_cache)()
        )
        kernel = get_kernel("numpy")
        p1, p2, p3 = (
            MultiShiftAnd([make_lnfa(text)]).program
            for text in ("ab", "cd", "xy")
        )
        kernel.scan(p1, b"ab")
        kernel.scan(p2, b"cd")
        kernel.scan(p1, b"ab")  # refresh p1: p2 is now least recent
        kernel.scan(p3, b"xy")
        assert p1 in npkernel._np_tables_cache
        assert p2 not in npkernel._np_tables_cache


def make_lnfa(text: str):
    """A literal LNFA (one CharClass per byte of ``text``)."""
    from repro.automata.lnfa import LNFA
    from repro.regex.charclass import CharClass

    return LNFA(
        tuple(
            CharClass.any() if ch == "." else CharClass.of(ch) for ch in text
        )
    )


def unfold_all_tree(pattern: str):
    from repro.regex.parser import parse

    return unfold_all(parse(pattern))


def test_fused_backend_registered():
    assert "fused" in available_backends()
    assert resolve_backend("fused") == "fused"
    assert get_kernel("fused").name == "fused"


def test_fused_kernel_scan_segment_roundtrip():
    # The fused StepKernel inherits the NumPy per-program path; spot
    # check the segment API returns continuing KernelStates.
    program = MultiShiftAnd([make_lnfa("abc")]).program
    kernel = get_kernel("fused")
    events, stats, state = kernel.scan_segment(program, b"xxabc", None)
    assert isinstance(state, KernelState)
    assert state.offset == 5
    whole, _ = kernel.scan(program, b"xxabc")
    assert events == whole
