"""ActivityTrace: scan-once memoization and aliasing safety."""

import pytest

from repro.compiler import CompiledMode, CompilerConfig, compile_pattern
from repro.core import trace as trace_mod
from repro.core.trace import ActivityTrace, regex_fingerprint
from repro.simulators.asic_base import shared_trace

DATA = b"xxabcdyyabcdzz"


def compiled(pattern: str, regex_id: int = 0):
    # Forced NFA keeps the mode deterministic (short literals would
    # otherwise be decided into LNFA bins, which trace per bin instead).
    return compile_pattern(
        pattern, regex_id, CompilerConfig(forced_mode=CompiledMode.NFA)
    )


class TestFingerprint:
    def test_excludes_regex_id(self):
        assert regex_fingerprint(compiled("abcd", 0)) == regex_fingerprint(
            compiled("abcd", 7)
        )

    def test_distinguishes_automata(self):
        assert regex_fingerprint(compiled("abcd")) != regex_fingerprint(
            compiled("abce")
        )


class TestMemoization:
    def test_identical_automata_share_one_scan(self):
        trace = ActivityTrace(DATA)
        a0 = trace.regex_activity(compiled("abcd", 0))
        a7 = trace.regex_activity(compiled("abcd", 7))
        assert trace.scan_count == 1
        assert a0.regex_id == 0
        assert a7.regex_id == 7
        assert a0.matches == a7.matches == [5, 11]

    def test_distinct_automata_scan_separately(self):
        trace = ActivityTrace(DATA)
        trace.regex_activity(compiled("abcd"))
        trace.regex_activity(compiled("abc"))
        assert trace.scan_count == 2

    def test_scans_counted_at_the_collector(self, monkeypatch):
        real = trace_mod.collect_regex_activity
        calls = []
        monkeypatch.setattr(
            trace_mod,
            "collect_regex_activity",
            lambda c, d: calls.append(c.regex_id) or real(c, d),
        )
        trace = ActivityTrace(DATA)
        for rid in range(4):
            trace.regex_activity(compiled("abcd", rid))
        assert calls == [0]
        assert trace.scan_count == 1

    def test_shared_results_never_alias(self):
        trace = ActivityTrace(DATA)
        a0 = trace.regex_activity(compiled("abcd", 0))
        a0.matches.append(999)
        a0.bv_cycle_indices.append(999)
        a7 = trace.regex_activity(compiled("abcd", 7))
        assert 999 not in a7.matches
        assert 999 not in a7.bv_cycle_indices

    def test_bin_activity_memoizes_by_identity(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            trace_mod,
            "collect_bin_activity",
            lambda b, d, h: calls.append(b) or len(calls),
        )
        trace = ActivityTrace(DATA)
        bin_a, bin_b, hw = object(), object(), object()
        assert trace.bin_activity(bin_a, hw) == 1
        assert trace.bin_activity(bin_a, hw) == 1
        assert trace.bin_activity(bin_b, hw) == 2
        assert calls == [bin_a, bin_b]
        assert trace.scan_count == 2


class TestSharedTraceGuard:
    def test_none_makes_a_private_trace(self):
        trace = shared_trace(DATA, None)
        assert isinstance(trace, ActivityTrace)
        assert trace.data == DATA

    def test_same_trace_passes_through(self):
        trace = ActivityTrace(DATA)
        assert shared_trace(DATA, trace) is trace

    def test_equal_content_passes(self):
        trace = ActivityTrace(bytes(DATA))
        assert shared_trace(bytes(DATA), trace) is trace

    def test_different_data_raises(self):
        trace = ActivityTrace(b"something else")
        with pytest.raises(ValueError, match="different data"):
            shared_trace(DATA, trace)
