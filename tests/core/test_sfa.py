"""SFA chunk-mapping algebra: composition laws against the real kernels.

Every property here pins the contract input-parallel scanning rests on:
a chunk's map applied to an entry state equals the authoritative
mid-stream stepper (:func:`iter_states_from`), and splitting a chunk
anywhere then composing the halves yields the same map as scanning it
whole.  The programs come from the actual compilers (Shift-And lanes,
Glushkov NFAs — including cyclic ones), not hand-built toys.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import build_automaton
from repro.automata.lnfa import LNFA
from repro.automata.nfa import NFASimulator
from repro.automata.shift_and import MultiShiftAnd, ShiftAnd
from repro.core.sfa import (
    FrontierMap,
    frontier_identity,
    gather_chunk_map,
    shift_chunk_map,
    shift_identity,
)
from repro.core.state import KernelState, iter_states_from
from repro.regex.parser import parse
from repro.regex.rewrite import linearize, unfold_all

from tests.helpers import inputs


def _lnfa(pattern: str) -> LNFA:
    lin = linearize(parse(pattern), max_states=64)
    assert lin is not None and len(lin.sequences) == 1
    return LNFA(lin.sequences[0])


def _shift_programs():
    plain = ShiftAnd(_lnfa("ab[cd]a")).program()
    anchored = ShiftAnd(_lnfa("abc")).program(
        anchored_start=True, anchored_end=True
    )
    packed = MultiShiftAnd(
        [_lnfa("abc"), _lnfa("b.d"), _lnfa("ca")],
        anchors=[(False, False), (True, False), (False, True)],
    ).program
    return [plain, anchored, packed]


def _gather_programs():
    programs = []
    for pattern, anchors in [
        ("abca", (False, False)),
        ("a(bc)*d", (False, False)),
        ("(ab|cd)+a", (True, False)),
        ("a[bc]*d", (False, True)),
    ]:
        automaton = build_automaton(unfold_all(parse(pattern)))
        programs.append(
            NFASimulator(automaton).program(
                anchored_start=anchors[0], anchored_end=anchors[1]
            )
        )
    return programs


SHIFT_PROGRAMS = _shift_programs()
GATHER_PROGRAMS = _gather_programs()


def _stepped(program, data: bytes, entry: int) -> int:
    """The authoritative mid-stream exit state for ``entry`` over ``data``."""
    state = entry
    for _, state in iter_states_from(
        program, data, KernelState(offset=1, states=entry)
    ):
        pass
    return state


# -- SHIFT_LEFT -------------------------------------------------------------


class TestShiftMap:
    @settings(max_examples=60, deadline=None)
    @given(data=inputs(), cut=st.integers(0, 64), entry=st.integers(0, 2**64))
    def test_split_anywhere_composes_to_the_whole(self, data, cut, entry):
        for program in SHIFT_PROGRAMS:
            k = cut % (len(data) + 1)
            whole = shift_chunk_map(program, data)
            halves = shift_chunk_map(program, data[:k]).then(
                shift_chunk_map(program, data[k:])
            )
            assert halves == whole
            s = entry % (1 << program.width)
            assert halves.apply(s) == whole.apply(s)

    @settings(max_examples=60, deadline=None)
    @given(data=inputs(), entry=st.integers(0, 2**64))
    def test_apply_equals_kernel_stepping(self, data, entry):
        for program in SHIFT_PROGRAMS:
            s = entry % (1 << program.width)
            assert shift_chunk_map(program, data).apply(s) == _stepped(
                program, data, s
            )

    @settings(max_examples=30, deadline=None)
    @given(data=inputs())
    def test_identity_laws(self, data):
        for program in SHIFT_PROGRAMS:
            m = shift_chunk_map(program, data)
            assert shift_identity().then(m) == m
            assert m.then(shift_identity()) == m

    @settings(max_examples=30, deadline=None)
    @given(
        data=inputs(max_size=48),
        cuts=st.tuples(st.integers(0, 64), st.integers(0, 64)),
    )
    def test_composition_is_associative(self, data, cuts):
        program = SHIFT_PROGRAMS[2]
        i, j = sorted(c % (len(data) + 1) for c in cuts)
        f = shift_chunk_map(program, data[:i])
        g = shift_chunk_map(program, data[i:j])
        h = shift_chunk_map(program, data[j:])
        assert f.then(g).then(h) == f.then(g.then(h))

    def test_constant_collapse_within_machine_width(self):
        # An entry bit must ride the shift chain, so any chunk at least
        # `width` symbols long ignores its entry state entirely — the
        # engine exploits this to evaluate long-chunk maps with a plain
        # warm-up scan.
        for program in SHIFT_PROGRAMS:
            window = b"abcd" * program.width
            m = shift_chunk_map(program, window[: program.width])
            assert m.constant
            assert m.apply(0) == m.apply((1 << program.width) - 1)

    def test_rejects_gather_programs(self):
        with pytest.raises(ValueError, match="SHIFT_LEFT"):
            shift_chunk_map(GATHER_PROGRAMS[0], b"ab")


# -- GATHER -----------------------------------------------------------------


class TestFrontierMap:
    @settings(max_examples=60, deadline=None)
    @given(data=inputs(), cut=st.integers(0, 64), entry=st.integers(0, 2**64))
    def test_split_anywhere_composes_to_the_whole(self, data, cut, entry):
        for program in GATHER_PROGRAMS:
            k = cut % (len(data) + 1)
            whole = gather_chunk_map(program, data)
            halves = gather_chunk_map(program, data[:k]).then(
                gather_chunk_map(program, data[k:])
            )
            assert halves == whole
            s = entry % (1 << program.width)
            assert halves.apply(s) == whole.apply(s)

    @settings(max_examples=60, deadline=None)
    @given(data=inputs(), entry=st.integers(0, 2**64))
    def test_apply_equals_kernel_stepping(self, data, entry):
        for program in GATHER_PROGRAMS:
            s = entry % (1 << program.width)
            assert gather_chunk_map(program, data).apply(s) == _stepped(
                program, data, s
            )

    @settings(max_examples=30, deadline=None)
    @given(data=inputs())
    def test_identity_laws(self, data):
        for program in GATHER_PROGRAMS:
            m = gather_chunk_map(program, data)
            ident = frontier_identity(program.width)
            assert ident.then(m) == m
            assert m.then(ident) == m

    @settings(max_examples=30, deadline=None)
    @given(
        data=inputs(max_size=48),
        cuts=st.tuples(st.integers(0, 64), st.integers(0, 64)),
    )
    def test_composition_is_associative(self, data, cuts):
        # The cyclic program is the one with no warm-up window — the
        # frontier table is the only sound mechanism for it.
        program = GATHER_PROGRAMS[1]
        i, j = sorted(c % (len(data) + 1) for c in cuts)
        f = gather_chunk_map(program, data[:i])
        g = gather_chunk_map(program, data[i:j])
        h = gather_chunk_map(program, data[j:])
        assert f.then(g).then(h) == f.then(g.then(h))

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="width"):
            frontier_identity(3).then(frontier_identity(4))

    def test_linearity_over_entry_union(self):
        program = GATHER_PROGRAMS[1]
        m = gather_chunk_map(program, b"abcbcd")
        full = (1 << program.width) - 1
        for a in range(min(16, full + 1)):
            for b in range(min(16, full + 1)):
                assert m.apply(a | b) == m.apply(a) | m.apply(b)

    def test_rejects_shift_programs(self):
        with pytest.raises(ValueError, match="GATHER"):
            gather_chunk_map(SHIFT_PROGRAMS[0], b"ab")
