"""Backend registry: resolution order, fallbacks, and scoping."""

import pytest

from repro.core import (
    BACKEND_ENV,
    KERNEL_FORMAT_VERSION,
    available_backends,
    backend_names,
    get_kernel,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.core import registry as registry_mod

HAVE_NUMPY = "numpy" in available_backends()


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    """Each test starts unpinned and with no RAP_BACKEND in the env."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    monkeypatch.setattr(registry_mod, "_default", None)


class TestResolution:
    def test_python_is_the_default(self):
        assert resolve_backend() == "python"

    def test_python_always_available(self):
        assert "python" in available_backends()
        assert set(available_backends()) <= set(backend_names())

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        expected = "numpy" if HAVE_NUMPY else "python"
        assert resolve_backend() == expected

    def test_env_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "  PyThOn ")
        assert resolve_backend() == "python"

    def test_unknown_env_value_falls_back_silently(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "cuda")
        assert resolve_backend() == "python"

    def test_explicit_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend("python") == "python"

    def test_unavailable_backend_falls_back_silently(self, monkeypatch):
        monkeypatch.setitem(
            registry_mod._BACKENDS, "ghost", (lambda: False, lambda: None)
        )
        assert resolve_backend("ghost") == "python"
        monkeypatch.setenv(BACKEND_ENV, "ghost")
        assert resolve_backend() == "python"


class TestDefaultPinning:
    def test_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        set_default_backend("python")
        assert resolve_backend() == "python"

    def test_none_unpins(self, monkeypatch):
        set_default_backend("python")
        set_default_backend(None)
        monkeypatch.setenv(BACKEND_ENV, "nonsense")
        assert resolve_backend() == "python"

    def test_pinning_resolves_eagerly(self, monkeypatch):
        # An unavailable pin resolves to python at pin time, so a later
        # (hypothetically successful) probe cannot flip the choice.
        monkeypatch.setitem(
            registry_mod._BACKENDS, "ghost", (lambda: False, lambda: None)
        )
        set_default_backend("ghost")
        assert registry_mod._default == "python"

    def test_use_backend_scopes_and_restores(self):
        set_default_backend("python")
        with use_backend("numpy") as resolved:
            assert resolved == ("numpy" if HAVE_NUMPY else "python")
            assert resolve_backend() == resolved
        assert resolve_backend() == "python"

    def test_use_backend_restores_on_error(self):
        set_default_backend("python")
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert registry_mod._default == "python"


class TestKernels:
    def test_instances_are_shared(self):
        assert get_kernel("python") is get_kernel("python")

    def test_kernel_reports_its_name(self):
        assert get_kernel("python").name == "python"

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
    def test_numpy_kernel_resolves(self):
        assert get_kernel("numpy").name == "numpy"

    def test_format_version_is_a_positive_int(self):
        assert isinstance(KERNEL_FORMAT_VERSION, int)
        assert KERNEL_FORMAT_VERSION >= 1
