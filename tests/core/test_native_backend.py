"""Native compiled backend: bit-identity, probe fallback, fingerprints.

The ``native`` backend generates specialized C per compiled ruleset and
runs it through ``cffi``/``ctypes``; its entire contract is that it is
*only* faster — matches, StepStats-derived counters, the priced energy
ledger, checkpoints, and the input-parallel seam protocol must be
byte-identical to the fused (and pure-Python) tiers.  This suite drives
random regexes and deterministic seam workloads through native/fused/
python triples, proves the no-compiler probe falls back silently with
an unchanged ``scan_fingerprint``, and pins the fingerprint *fold* when
native actually attaches (a checkpoint names the kernel that wrote it).
"""

import dataclasses
import os
import random
import signal
import subprocess
import sys

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerConfig, compile_ruleset
from repro.compiler.program import CompiledMode
from repro.core import (
    available_backends,
    backend_names,
    resolve_backend,
    resolve_backend_with_reason,
    use_backend,
)
from repro.core.native import (
    NATIVE_DISABLE_ENV,
    native_available,
    native_unavailable_reason,
)
from repro.engine import BatchEngine, EngineConfig
from repro.engine.checkpoint import CheckpointStore, DurableScan
from repro.hardware.config import DEFAULT_CONFIG
from repro.regex import ast
from repro.regex.charclass import CharClass
from repro.simulators.rap import RAPSimulator

from tests.helpers import inputs, regex_trees

NATIVE = native_available() and "numpy" in available_backends()
needs_native = pytest.mark.skipif(
    not NATIVE, reason="native backend not available (no C toolchain?)"
)


def scannable_trees(max_leaves: int = 6):
    return regex_trees(max_leaves=max_leaves).map(
        lambda t: ast.concat(ast.lit(CharClass.of("a")), t)
    )


def _assert_results_identical(got, want):
    assert got.matches == want.matches
    assert got.energy_breakdown_pj == want.energy_breakdown_pj
    assert dataclasses.asdict(got.metrics) == dataclasses.asdict(want.metrics)


def _run(ruleset, data: bytes, backend: str):
    with use_backend(backend):
        return RAPSimulator(DEFAULT_CONFIG).run(ruleset, data)


class TestProbeAndFallback:
    def test_native_is_registered(self):
        assert "native" in backend_names()

    @needs_native
    def test_native_resolves_when_available(self):
        assert resolve_backend("native") == "native"
        assert resolve_backend_with_reason("native") == ("native", None)

    def test_disable_env_falls_back_silently(self, monkeypatch):
        monkeypatch.setenv(NATIVE_DISABLE_ENV, "1")
        assert "disabled" in native_unavailable_reason()
        assert resolve_backend("native") == "fused"
        resolved, reason = resolve_backend_with_reason("native")
        assert resolved == "fused"
        assert "native unavailable" in reason
        assert "disabled" in reason

    def test_unknown_env_backend_reports_reason(self, monkeypatch):
        monkeypatch.setenv("RAP_BACKEND", "warp-drive")
        resolved, reason = resolve_backend_with_reason()
        assert resolved == "python"
        assert "warp-drive" in reason

    def test_explicit_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            resolve_backend_with_reason("warp-drive")

    def test_available_backend_has_no_reason(self):
        resolved, reason = resolve_backend_with_reason("python")
        assert resolved == "python"
        assert reason is None


# Patterns that land on every execution tier at once: LNFA keywords,
# an NFA alternation, a DFA-eligible literal run, and an NBVA counter.
MIXED_PATTERNS = ["needle", "marker", "foo[0-9]*bar", "ab{10,20}c", "x(y|z)w"]


def _mixed_data(n: int = 30000, seed: int = 23) -> bytes:
    rng = random.Random(seed)
    base = bytearray(
        rng.choice(b"\x00\x00\x00 abfnoxyzw") for _ in range(n)
    )
    for word in (b"needle", b"marker", b"foo42bar", b"a" + b"b" * 12 + b"c",
                 b"xyw", b"xzw"):
        for _ in range(15):
            pos = rng.randrange(n - len(word))
            base[pos : pos + len(word)] = word
    return bytes(base)


@needs_native
class TestNativeDifferential:
    """native == fused == python on matches, counters, and energy."""

    @settings(max_examples=25, deadline=None)
    @given(tree=scannable_trees(max_leaves=6), data=inputs(max_size=48))
    def test_random_regexes(self, tree, data):
        pattern = tree.to_pattern()
        ruleset = compile_ruleset([pattern])
        assume(not ruleset.rejected)
        want = _run(ruleset, data, "python")
        _assert_results_identical(_run(ruleset, data, "fused"), want)
        _assert_results_identical(_run(ruleset, data, "native"), want)

    def test_mixed_mode_ruleset(self):
        ruleset = compile_ruleset(MIXED_PATTERNS)
        assert not ruleset.rejected
        data = _mixed_data()
        want = _run(ruleset, data, "fused")
        _assert_results_identical(_run(ruleset, data, "native"), want)
        _assert_results_identical(_run(ruleset, data, "python"), want)

    @pytest.mark.parametrize("mode", [CompiledMode.NFA, CompiledMode.DFA])
    def test_forced_unit_tiers(self, mode):
        """The gather and DFA unit kernels, not just the lane machine."""
        ruleset = compile_ruleset(
            ["needle", "foo[0-9]*bar", "x(y|z)w"],
            CompilerConfig(forced_mode=mode),
        )
        assert not ruleset.rejected
        data = _mixed_data(seed=31)
        want = _run(ruleset, data, "fused")
        _assert_results_identical(_run(ruleset, data, "native"), want)

    def test_engine_scan_matches_fused(self):
        ruleset = compile_ruleset(MIXED_PATTERNS)
        data = _mixed_data(seed=37)
        want = BatchEngine(
            EngineConfig(jobs=1, backend="fused", use_cache=False)
        ).scan(ruleset, data)
        got = BatchEngine(
            EngineConfig(jobs=1, backend="native", use_cache=False)
        ).scan(ruleset, data)
        _assert_results_identical(got, want)


@needs_native
class TestNativeSeams:
    """Input-parallel seams and checkpoint state under native."""

    def test_input_jobs_matches_serial(self):
        ruleset = compile_ruleset(MIXED_PATTERNS)
        data = _mixed_data(seed=41)
        serial = BatchEngine(
            EngineConfig(jobs=1, backend="fused", use_cache=False)
        ).scan(ruleset, data)
        got = BatchEngine(
            EngineConfig(
                jobs=1,
                input_jobs=2,
                backend="native",
                min_chunk_bytes=512,
                use_cache=False,
            )
        ).scan(ruleset, data)
        _assert_results_identical(got, serial)

    def test_checkpoint_at_a_seam_resumes_identically(self, tmp_path):
        """Snapshot mid-stream with input_jobs=2 on native, restore,
        finish: results equal the uninterrupted fused scan."""
        ruleset = compile_ruleset(MIXED_PATTERNS)
        data = _mixed_data(seed=43)
        plain = BatchEngine(
            EngineConfig(jobs=1, backend="fused", use_cache=False)
        ).scan(ruleset, data)
        with use_backend("native"):
            sim = RAPSimulator(DEFAULT_CONFIG)
            mapping = sim.build_mapping(ruleset, bin_size=None)
            scan = DurableScan(
                ruleset,
                mapping,
                DEFAULT_CONFIG,
                input_jobs=2,
                min_chunk_bytes=512,
            )
            store = CheckpointStore(tmp_path)
            scan.feed(data[: len(data) // 2], at_end=False)
            store.write(scan.snapshot(), scan.offset)

            resumed = DurableScan(
                ruleset,
                mapping,
                DEFAULT_CONFIG,
                input_jobs=2,
                min_chunk_bytes=512,
            )
            resumed.restore(store.load_latest(), data)
            assert resumed.offset == len(data) // 2
            resumed.feed(data[resumed.offset :], at_end=True)
            got = sim.run_from_activity(ruleset, resumed.finish(), mapping)
        _assert_results_identical(got, plain)

    def test_sigkill_mid_scan_then_resume_matches_fused_golden(
        self, tmp_path
    ):
        """Golden run on fused; SIGKILLed + resumed run on native; the
        printed matches (and float energy) must be byte-identical."""
        repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        rules = tmp_path / "rules.txt"
        rules.write_text("\n".join(MIXED_PATTERNS) + "\n")
        stream = tmp_path / "input.bin"
        stream.write_bytes(_mixed_data(8000, seed=47))
        ckpts = tmp_path / "ckpts"
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("RAP_FAULT_PLAN", None)
        base = [
            sys.executable,
            "-m",
            "repro",
            "scan",
            "--patterns",
            str(rules),
            str(stream),
            "--no-cache",
        ]
        durable = [
            *base,
            "--backend",
            "native",
            "--checkpoint-dir",
            str(ckpts),
            "--checkpoint-every",
            "1000",
        ]
        golden = subprocess.run(
            [*base, "--backend", "fused"],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo,
        )
        assert golden.returncode == 0, golden.stderr
        killed = subprocess.run(
            durable,
            capture_output=True,
            text=True,
            env=dict(env, RAP_FAULT_PLAN="kill@2"),
            cwd=repo,
        )
        assert killed.returncode in (-signal.SIGKILL, 137)
        assert list(ckpts.glob("ckpt-*.json")), "no checkpoint survived"
        resumed = subprocess.run(
            [*durable, "--resume"],
            capture_output=True,
            text=True,
            env=dict(env, RAP_FAULT_PLAN=""),
            cwd=repo,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == golden.stdout
        assert "resumed from checkpoint" in resumed.stderr


@needs_native
class TestFingerprintFold:
    def _fingerprint(self) -> str:
        ruleset = compile_ruleset(["needle", "marker"])
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        return DurableScan(ruleset, mapping, DEFAULT_CONFIG).fingerprint

    def test_disabled_native_keeps_fused_fingerprint(self, monkeypatch):
        """The silent-fallback contract: with the probe failing, a scan
        requested on native writes checkpoints a fused scan can resume
        (and vice versa) — the fingerprint must not change."""
        with use_backend("fused"):
            fused_fp = self._fingerprint()
        monkeypatch.setenv(NATIVE_DISABLE_ENV, "1")
        with use_backend("native"):  # resolves to fused via the probe
            assert resolve_backend() == "fused"
            assert self._fingerprint() == fused_fp

    def test_attached_native_folds_into_fingerprint(self):
        """When the native kernel actually executes, checkpoints name
        it: resuming under a different tier is an explicit rebind, the
        same contract as ``split_layout``."""
        with use_backend("fused"):
            fused_fp = self._fingerprint()
        with use_backend("native"):
            native_fp = self._fingerprint()
        assert native_fp != fused_fp

    def test_native_fingerprint_is_stable(self):
        with use_backend("native"):
            first = self._fingerprint()
            second = self._fingerprint()
        assert first == second
