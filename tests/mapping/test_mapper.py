"""Greedy mapper tests: constraints, sharing, utilization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerConfig, compile_ruleset
from repro.hardware.config import DEFAULT_CONFIG, TileMode
from repro.mapping.mapper import Mapping, MappingError, map_ruleset

HW = DEFAULT_CONFIG


def mapped(patterns, bin_size=None, **cfg) -> Mapping:
    ruleset = compile_ruleset(patterns, CompilerConfig(**cfg))
    assert not ruleset.rejected, ruleset.rejected
    return map_ruleset(ruleset, HW, bin_size=bin_size)


class TestTiledPlacement:
    def test_small_regexes_share_a_tile(self):
        mapping = mapped(["ab*c", "de*f", "gh*i"])
        assert mapping.total_arrays == 1
        (array,) = mapping.arrays
        assert array.mode is TileMode.NFA
        assert len(array.tiles) == 1
        assert array.tiles[0].states == 9

    def test_mode_partitioning(self):
        mapping = mapped(["ab*c", "xy{100}z"])
        modes = sorted(a.mode.value for a in mapping.arrays)
        assert modes == ["nbva", "nfa"]

    def test_nbva_read_kinds_separate_tiles(self):
        mapping = mapped(["aa{100}b", "cc{0,100}d"], unfold_threshold=4)
        arrays = mapping.arrays_in_mode(TileMode.NBVA)
        assert len(arrays) == 1
        reads = [t.read for t in arrays[0].tiles if t.read is not None]
        assert len(set(reads)) == len(reads)  # no tile mixes read kinds

    def test_multi_tile_regex_single_array(self):
        mapping = mapped(["a{3000}"], bv_depth=4)
        arrays = mapping.arrays_in_mode(TileMode.NBVA)
        assert len(arrays) == 1
        regex_tiles = [
            t for t in arrays[0].tiles for occ in t.occupants
        ]
        assert len(arrays[0].tiles) >= 2

    def test_array_overflow_spawns_new_array(self):
        # Each a{500}-style regex at depth 4 takes ~127 columns, one tile
        # each; 20 of them need two arrays of 16 tiles.
        patterns = [f"{c}{{500}}" for c in "abcdefghijklmnopqrst"]
        mapping = mapped(patterns, bv_depth=4)
        assert len(mapping.arrays_in_mode(TileMode.NBVA)) == 2

    def test_column_utilization_high_for_dense_packing(self):
        patterns = [f"{c}{{504}}" for c in "abcdefgh"]
        mapping = mapped(patterns, bv_depth=4)
        assert mapping.column_utilization() > 0.9

    def test_impossible_regex_raises(self):
        from repro.compiler.program import CompiledRegex, TileRequest
        from repro.compiler import CompiledMode as M
        from repro.compiler.program import CompiledRuleset
        from repro.automata.glushkov import build_automaton
        from repro.regex.parser import parse

        auto = build_automaton(parse("a"))
        too_many_tiles = tuple(
            TileRequest(mode=TileMode.NFA, states=1, cc_columns=1)
            for _ in range(HW.tiles_per_array + 1)
        )
        regex = CompiledRegex(
            regex_id=0,
            pattern="synthetic",
            mode=M.NFA,
            automaton=auto,
            tile_requests=too_many_tiles,
        )
        with pytest.raises(MappingError):
            map_ruleset(CompiledRuleset(regexes=(regex,)), HW)


class TestLnfaPlacement:
    def test_bins_created_and_placed(self):
        mapping = mapped(["abcd", "efgh", "ijkl"], bin_size=2)
        assert mapping.bins
        arrays = mapping.arrays_in_mode(TileMode.LNFA)
        assert len(arrays) == 1
        assert arrays[0].tiles_used >= 1

    def test_overlay_of_cam_and_switch_bins(self):
        # A switch-ineligible class: scattered bytes across many blocks.
        scattered = "[\\x01\\x21\\x41\\x61\\x81\\xa1]"
        cam_patterns = ["abcd", "efgh"]
        switch_patterns = [scattered * 4]
        mapping = mapped(cam_patterns + switch_patterns, bin_size=2)
        (array,) = mapping.arrays_in_mode(TileMode.LNFA)
        # Overlay: physical tiles = max(cam, switch) demand, not the sum.
        assert array.tiles_used == max(
            array.lnfa_cam_tiles, array.lnfa_switch_tiles
        )
        assert array.lnfa_cam_tiles > 0 and array.lnfa_switch_tiles > 0

    def test_bin_utilization_reported(self):
        mapping = mapped(["ab", "cdef"], bin_size=2)
        assert 0 < mapping.bin_utilization() <= 1.0


class TestMappingMetrics:
    def test_total_tiles_and_banks(self):
        mapping = mapped(["ab*c", "abcd", "xy{100}z"])
        assert mapping.total_tiles >= 3
        assert mapping.banks_needed == 1

    def test_blended_utilization_in_range(self):
        mapping = mapped(["ab*c", "abcd", "xy{100}z"])
        assert 0 < mapping.utilization() <= 1.0

    def test_empty_ruleset(self):
        from repro.compiler.program import CompiledRuleset

        mapping = map_ruleset(CompiledRuleset(regexes=()), HW)
        assert mapping.total_arrays == 0
        assert mapping.utilization() == 1.0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.sampled_from(
            ["ab*c", "abcd", "xy{100}z", "p{0,60}q", "(?:ab){40}", "[ab]{3}cd"]
        ),
        min_size=1,
        max_size=30,
    ),
    st.sampled_from([1, 4, 32]),
)
def test_mapping_invariants(patterns, bin_size):
    """No constraint violations regardless of workload composition."""
    mapping = mapped(patterns, bin_size=bin_size)
    hw = mapping.hw
    for array in mapping.arrays:
        assert array.tiles_used <= hw.tiles_per_array
        for tile in array.tiles:
            assert tile.columns <= hw.cam_cols
            assert tile.ports <= hw.global_ports_per_tile
            reads = {
                occ.read
                for _, occ in tile.occupants
                if occ.read is not None
            }
            assert len(reads) <= 1
    # every compiled regex is placed in exactly one array
    placed: dict[int, int] = {}
    for idx, array in enumerate(mapping.arrays):
        for rid in array.regex_ids:
            assert rid not in placed, "regex split across arrays"
            placed[rid] = idx
    assert len(placed) == len(patterns)
