"""Tests for the LNFA binning algorithm (Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.lnfa import LNFA
from repro.hardware.config import DEFAULT_CONFIG
from repro.mapping.binning import (
    BinItem,
    BinKind,
    plan_bins,
    states_per_tile,
    tiles_for,
)
from repro.regex.charclass import CharClass

HW = DEFAULT_CONFIG


def item(length: int, regex_id: int = 0, idx: int = 0, cam: bool = True) -> BinItem:
    labels = tuple(CharClass.of("a") for _ in range(length))
    return BinItem(
        regex_id=regex_id, lnfa_index=idx, lnfa=LNFA(labels), cam_eligible=cam
    )


def items(lengths, cam=True):
    return [item(n, regex_id=i, cam=cam) for i, n in enumerate(lengths)]


class TestCapacities:
    def test_states_per_tile(self):
        assert states_per_tile(BinKind.CAM, HW) == 128
        assert states_per_tile(BinKind.SWITCH, HW) == 64

    def test_tiles_for_single(self):
        assert tiles_for(1, 128, BinKind.CAM, HW) == 1
        assert tiles_for(1, 129, BinKind.CAM, HW) == 2

    def test_tiles_for_bin(self):
        # 4 LNFAs of 64 states: region = 128 // 4 = 32, 2 tiles
        assert tiles_for(4, 64, BinKind.CAM, HW) == 2

    def test_tiles_for_switch(self):
        assert tiles_for(2, 64, BinKind.SWITCH, HW) == 2


class TestPlanBins:
    def test_small_uniform_set_fills_one_bin(self):
        bins = plan_bins(items([4] * 8), hw=HW, overlay_split=False)
        assert len(bins) == 1
        assert bins[0].size == 8
        assert bins[0].kind is BinKind.CAM

    def test_overlay_split_two_to_one(self):
        """CAM-eligible groups split ~2:1 across the tile's two sides."""
        bins = plan_bins(items([4] * 9), hw=HW)
        assert len(bins) == 2
        by_kind = {b.kind: b for b in bins}
        assert by_kind[BinKind.CAM].size == 6
        assert by_kind[BinKind.SWITCH].size == 3

    def test_overlay_split_skips_tiny_groups(self):
        bins = plan_bins(items([4] * 2), hw=HW)
        assert len(bins) == 1

    def test_footprint_columns(self):
        cam, switch = (
            plan_bins(items([10] * 6), hw=HW, overlay_split=False)[0],
            plan_bins(items([10] * 6, cam=False), hw=HW)[0],
        )
        assert cam.footprint_columns == 60
        assert switch.footprint_columns == 120

    def test_bin_size_cap_respected(self):
        bins = plan_bins(items([4] * 8), hw=HW, bin_size=2)
        assert all(b.size == 2 for b in bins)
        assert len(bins) == 4

    def test_fig7_scenario(self):
        """4 LNFAs binned pairwise across two tiles each (Fig. 7b)."""
        bins = plan_bins(items([100, 100, 100, 100]), hw=HW, bin_size=2)
        assert len(bins) == 2
        for b in bins:
            assert b.size == 2
            assert b.tiles == tiles_for(2, 100, BinKind.CAM, HW)

    def test_halving_on_oversized(self):
        """A long LNFA forces the bin to shrink until it fits."""
        bins = plan_bins(items([1000] * 32), hw=HW, bin_size=32)
        # region at size 32 is 4 states -> 250 tiles > 16: must halve.
        for b in bins:
            assert b.tiles <= HW.tiles_per_array

    def test_all_items_exactly_once(self):
        lengths = [3, 5, 8, 8, 13, 21, 34, 55, 4, 4]
        bins = plan_bins(items(lengths), hw=HW, bin_size=4)
        seen = sorted(
            (it.regex_id, it.lnfa_index) for b in bins for it in b.items
        )
        assert seen == sorted((i, 0) for i in range(len(lengths)))

    def test_kinds_partitioned(self):
        """CAM bins never contain CAM-ineligible classes; switch bins may
        contain either (one-hot encoding is universal)."""
        mixed = items([4] * 4, cam=True) + [
            item(4, regex_id=10 + i, cam=False) for i in range(4)
        ]
        bins = plan_bins(mixed, hw=HW)
        for b in bins:
            if b.kind is BinKind.CAM:
                assert all(it.cam_eligible for it in b.items)
        ineligible_bins = [
            b
            for b in bins
            if any(not it.cam_eligible for it in b.items)
        ]
        assert all(b.kind is BinKind.SWITCH for b in ineligible_bins)

    def test_sorted_by_size_minimizes_padding(self):
        """Similar sizes end up together, keeping utilization high."""
        bins = plan_bins(
            items([4] * 16 + [64] * 16),
            hw=HW,
            bin_size=16,
            overlay_split=False,
        )
        assert len(bins) == 2
        assert all(b.utilization == 1.0 for b in bins)

    def test_utilization_accounts_padding(self):
        bins = plan_bins(items([2, 4]), hw=HW, bin_size=2)
        (b,) = bins
        assert b.padded_states == 8
        assert b.real_states == 6
        assert b.utilization == pytest.approx(0.75)

    def test_oversized_single_lnfa_raises(self):
        too_long = HW.cam_cols * HW.tiles_per_array + 1
        with pytest.raises(ValueError):
            plan_bins(items([too_long]), hw=HW)

    def test_invalid_bin_size(self):
        with pytest.raises(ValueError):
            plan_bins(items([4]), hw=HW, bin_size=0)

    def test_gateable_tiles(self):
        bins = plan_bins(items([100, 100]), hw=HW, bin_size=2)
        (b,) = bins
        assert b.initial_tiles == 1
        assert b.gateable_tiles == b.tiles - 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(1, 300), min_size=1, max_size=40),
    st.sampled_from([1, 2, 4, 8, 16, 32]),
)
def test_binning_invariants(lengths, bin_size):
    """Every LNFA appears exactly once; every bin respects the limits."""
    all_items = items(lengths)
    bins = plan_bins(all_items, hw=HW, bin_size=bin_size)
    seen = [(it.regex_id, it.lnfa_index) for b in bins for it in b.items]
    assert sorted(seen) == sorted((it.regex_id, it.lnfa_index) for it in all_items)
    for b in bins:
        assert 1 <= b.size <= min(bin_size, HW.max_bin_size)
        assert b.tiles <= HW.tiles_per_array
        assert 0 < b.utilization <= 1.0
