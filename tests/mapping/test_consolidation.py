"""Tests for physical-array consolidation (Section 3.3 per-tile modes)."""

from repro.compiler import CompilerConfig, compile_ruleset
from repro.hardware.config import DEFAULT_CONFIG, TileMode
from repro.mapping.mapper import Mapping, map_ruleset
from repro.mapping.resources import ArrayBuilder


def synthetic_mapping(tile_counts: dict[TileMode, list[int]]) -> Mapping:
    mapping = Mapping(arrays=[], hw=DEFAULT_CONFIG)
    for mode, counts in tile_counts.items():
        for tiles in counts:
            array = ArrayBuilder(mode=mode, hw=DEFAULT_CONFIG)
            if mode is TileMode.LNFA:
                array.lnfa_cam_columns = tiles * DEFAULT_CONFIG.cam_cols
            else:
                from repro.mapping.resources import PhysicalTile

                array.tiles = [PhysicalTile(mode=mode) for _ in range(tiles)]
            mapping.arrays.append(array)
    return mapping


class TestPhysicalArrays:
    def test_nfa_and_lnfa_share(self):
        mapping = synthetic_mapping(
            {TileMode.NFA: [3], TileMode.LNFA: [2]}
        )
        assert mapping.total_arrays == 2
        assert mapping.physical_arrays() == 1

    def test_nbva_stays_dedicated(self):
        mapping = synthetic_mapping(
            {TileMode.NBVA: [1], TileMode.NFA: [1], TileMode.LNFA: [1]}
        )
        assert mapping.physical_arrays() == 2  # NBVA alone + shared pair

    def test_capacity_respected(self):
        mapping = synthetic_mapping(
            {TileMode.NFA: [10], TileMode.LNFA: [10]}
        )
        # 10 + 10 > 16: cannot share one array
        assert mapping.physical_arrays() == 2

    def test_multiple_small_arrays_pack(self):
        mapping = synthetic_mapping({TileMode.NFA: [4, 4, 4, 4]})
        assert mapping.physical_arrays() == 1

    def test_empty_mapping(self):
        mapping = Mapping(arrays=[], hw=DEFAULT_CONFIG)
        assert mapping.physical_arrays() == 0
        assert mapping.banks_needed == 0

    def test_banks_derive_from_physical_arrays(self):
        mapping = synthetic_mapping({TileMode.NBVA: [2]} | {})
        assert mapping.banks_needed == 1

    def test_real_mixed_workload_consolidates(self):
        ruleset = compile_ruleset(
            ["ab{40}c", "wxyz", "pq*r"], CompilerConfig(bv_depth=8)
        )
        mapping = map_ruleset(ruleset)
        assert mapping.total_arrays == 3  # one per mode during placement
        assert mapping.physical_arrays() == 2  # NFA+LNFA consolidate
