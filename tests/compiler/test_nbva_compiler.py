"""NBVA compiler tests: splitting, packing, constraints (Example 4.3)."""

import pytest

from repro.automata.glushkov import ReadKind
from repro.automata.nbva import NBVASimulator
from repro.automata.nfa import NFASimulator
from repro.automata.glushkov import build_automaton
from repro.compiler.nbva_compiler import (
    compile_nbva,
    prepare_nbva,
    repeat_columns,
    split_large_repeats,
)
from repro.compiler.program import CompiledMode, CompileError
from repro.hardware.config import DEFAULT_CONFIG, TileMode
from repro.regex.ast import Repeat
from repro.regex.parser import parse
from repro.regex.rewrite import unfold_all

HW = DEFAULT_CONFIG


def compiled(pattern: str, threshold: int = 8, depth: int = 4, align: bool = True):
    return compile_nbva(
        0,
        pattern,
        parse(pattern),
        unfold_threshold=threshold,
        depth=depth,
        hw=HW,
        word_align_exact=align,
    )


class TestRepeatColumns:
    def test_paper_example_4_3_cost(self):
        """a{1024} at depth 4 needs 258 columns: 1 CC + 256 BV + 1 set1."""
        rep = parse("a{1024}")
        assert isinstance(rep, Repeat)
        assert repeat_columns(rep, depth=4) == 258

    def test_small_repeat(self):
        rep = parse("a{16}")
        assert repeat_columns(rep, depth=4) == 1 + 4 + 1

    def test_multi_state_body(self):
        rep = parse("(?:ab){32}")
        # 2 CC columns, 2 states x 8 BV words, 1 entry state
        assert repeat_columns(rep, depth=4) == 2 + 16 + 1

    def test_alternation_body_entry_states(self):
        rep = parse("(?:a|b){32}")
        # both a and b are entry states -> 2 set1 columns
        assert repeat_columns(rep, depth=4) == 2 + 16 + 2


class TestSplitting:
    def test_paper_example_4_3(self):
        """a{1024} at depth 4 splits into a{504} a{504} a{16}."""
        out = split_large_repeats(parse("a{1024}"), depth=4, hw=HW)
        assert out == parse("a{504}a{504}a{16}")

    def test_small_repeat_untouched(self):
        regex = parse("a{100}")
        assert split_large_repeats(regex, depth=4, hw=HW) == regex

    def test_upto_splits_additively(self):
        out = split_large_repeats(parse("a{0,1024}"), depth=4, hw=HW)
        assert out == parse("a{0,504}a{0,504}a{0,16}")

    def test_split_preserves_total_bound(self):
        out = split_large_repeats(parse("a{2000}"), depth=8, hw=HW)
        reps = [n for n in out.walk() if isinstance(n, Repeat)]
        assert sum(r.hi for r in reps) == 2000
        for rep in reps:
            assert repeat_columns(rep, depth=8) <= HW.cam_cols

    def test_deeper_bv_allows_bigger_pieces(self):
        shallow = split_large_repeats(parse("a{4096}"), depth=4, hw=HW)
        deep = split_large_repeats(parse("a{4096}"), depth=32, hw=HW)
        n_shallow = sum(isinstance(n, Repeat) for n in shallow.walk())
        n_deep = sum(isinstance(n, Repeat) for n in deep.walk())
        assert n_deep < n_shallow


class TestCompileNbva:
    def test_plain_regex_returns_none(self):
        assert compiled("abc") is None

    def test_small_bounds_unfold_to_none(self):
        assert compiled("a{4}", threshold=8) is None

    def test_basic_compile(self):
        out = compiled("ab{100}c")
        assert out is not None
        assert out.mode is CompiledMode.NBVA
        assert out.automaton is not None
        assert len(out.automaton.groups) == 1
        assert out.unfolded_states == 102

    def test_tile_request_shape(self):
        out = compiled("ab{100}c", depth=4)
        assert out.tiles_needed == 1
        (req,) = out.tile_requests
        assert req.mode is TileMode.NBVA
        assert req.states == 3
        assert req.cc_columns == 3
        assert req.bv_columns == 25  # ceil(100/4)
        assert req.set1_columns == 1
        assert req.read is ReadKind.EXACT
        assert req.depth == 4

    def test_r_and_rall_never_share_a_tile(self):
        """Example 4.3: bc{0,16} goes to its own tile."""
        out = compiled("a{100}bc{0,16}", depth=4, align=False)
        for req in out.tile_requests:
            assert req.read in (None, ReadKind.EXACT, ReadKind.ALL)
        reads = [req.read for req in out.tile_requests if req.read]
        assert ReadKind.EXACT in reads and ReadKind.ALL in reads
        assert len(out.tile_requests) >= 2

    def test_paper_example_4_3_tiles(self):
        """a{1024}bc{0,16} at depth 4 needs four tiles."""
        out = compiled("a{1024}bc{0,16}", depth=4, align=False)
        assert out.tiles_needed == 4

    def test_columns_never_exceed_capacity(self):
        out = compiled("a{1024}b{777}c{0,333}", depth=4, align=False)
        for req in out.tile_requests:
            assert req.total_columns <= HW.cam_cols

    def test_global_ports_on_split(self):
        out = compiled("a{1024}", depth=4)
        assert out.tiles_needed == 3
        assert any(req.global_ports > 0 for req in out.tile_requests)

    def test_huge_regex_rejected(self):
        """Unfolded size beyond the 64528-STE NBVA cap is rejected."""
        with pytest.raises(CompileError):
            compiled("a{65000}", depth=32)

    def test_functional_equivalence_after_preparation(self):
        """Splitting and alignment never change the language."""
        pattern = "xa{50,70}y"
        prepared = prepare_nbva(
            parse(pattern), unfold_threshold=4, depth=4, hw=HW
        )
        nbva_sim = NBVASimulator(build_automaton(prepared))
        nfa_sim = NFASimulator(build_automaton(unfold_all(parse(pattern))))
        for count in (49, 50, 60, 70, 71):
            data = b"x" + b"a" * count + b"y"
            assert nbva_sim.find_matches(data) == nfa_sim.find_matches(data), count

    def test_word_alignment_applied(self):
        out = compiled("ad{34}e", depth=16)
        # d{34} -> d{32} d d : group of width 32 plus two plain states
        group = out.automaton.groups[0]
        assert group.width == 32
        assert out.automaton.state_count == 5

    def test_multi_tile_split_equivalence(self):
        """A split counted run still matches exactly at the boundary."""
        prepared = prepare_nbva(
            parse("a{300}"), unfold_threshold=4, depth=4, hw=HW
        )
        sim = NBVASimulator(build_automaton(prepared))
        assert sim.find_matches(b"a" * 299) == []
        assert sim.find_matches(b"a" * 300) == [299]
        assert sim.find_matches(b"a" * 302) == [299, 300, 301]
