"""Property tests on NBVA tile plans: the hardware constraints always hold.

The packer must never emit a plan violating the Section 3 constraints,
whatever the regex: column capacity, read-kind purity per tile, atomic
counter groups, port budgets, and depth uniformity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompileError
from repro.compiler.nbva_compiler import compile_nbva
from repro.compiler.nfa_compiler import compile_nfa
from repro.hardware.config import DEFAULT_CONFIG
from repro.regex.parser import parse

HW = DEFAULT_CONFIG

_cc = st.sampled_from(["a", "[a-f]", "[^;]", "[0-9]", "."])
_lit = st.text(alphabet="xyzw", min_size=1, max_size=6)


@st.composite
def counted_patterns(draw):
    """Random signature-shaped patterns with 1-3 counted parts."""
    parts = [draw(_lit)]
    for _ in range(draw(st.integers(1, 3))):
        cc = draw(_cc)
        style = draw(st.integers(0, 2))
        hi = draw(st.integers(9, 1200))
        if style == 0:
            parts.append(f"{cc}{{{hi}}}")
        elif style == 1:
            lo = draw(st.integers(1, max(1, hi // 3)))
            parts.append(f"{cc}{{{lo},{hi}}}")
        else:
            parts.append(f"{cc}{{0,{hi}}}")
        parts.append(draw(_lit))
    return "".join(parts)


def check_plan(compiled):
    hw = HW
    depths = set()
    for request in compiled.tile_requests:
        request.validate(hw.cam_cols)
        assert request.total_columns <= hw.cam_cols
        assert request.global_ports <= hw.global_ports_per_tile
        if request.depth is not None:
            depths.add(request.depth)
        if request.bv_columns:
            assert request.read is not None
            assert request.depth is not None
    assert len(depths) <= 1, "one depth per regex (per-workload DSE choice)"
    # groups are atomic: counted states never split across requests
    assert sum(r.states for r in compiled.tile_requests) == compiled.states


@settings(max_examples=120, deadline=None)
@given(counted_patterns(), st.sampled_from([4, 8, 16, 32]))
def test_nbva_plans_respect_hardware_constraints(pattern, depth):
    try:
        compiled = compile_nbva(
            0,
            pattern,
            parse(pattern),
            unfold_threshold=8,
            depth=depth,
            hw=HW,
        )
    except CompileError:
        return  # over hardware limits: rejecting is the correct behaviour
    if compiled is None:
        return  # everything unfolded away
    check_plan(compiled)
    assert compiled.automaton is not None
    compiled.automaton.validate()


@settings(max_examples=80, deadline=None)
@given(counted_patterns())
def test_nfa_plans_respect_hardware_constraints(pattern):
    regex = parse(pattern)
    if regex.unfolded_size() > HW.max_regex_states:
        return
    compiled = compile_nfa(0, pattern, regex, HW)
    for request in compiled.tile_requests:
        request.validate(HW.cam_cols)
        assert request.global_ports <= HW.global_ports_per_tile
    assert sum(r.states for r in compiled.tile_requests) == compiled.states


@settings(max_examples=60, deadline=None)
@given(counted_patterns(), st.sampled_from([4, 16]))
def test_deeper_bvs_never_need_more_columns(pattern, depth):
    """Compression monotonicity: depth 32 uses <= columns of depth d.

    Checked with word alignment off — alignment unfolds the remainder
    ``m mod depth`` into plain states, whose count legitimately grows
    with depth (``d{34}`` at depth 32 carries two more plain states than
    at depth 4, where 34 is an exact multiple of nothing to trim).
    """
    def compiled_at(d):
        return compile_nbva(
            0,
            pattern,
            parse(pattern),
            unfold_threshold=8,
            depth=d,
            hw=HW,
            word_align_exact=False,
        )

    try:
        shallow = compiled_at(depth)
        deep = compiled_at(32)
    except CompileError:
        return
    if shallow is None or deep is None:
        return
    assert deep.total_columns <= shallow.total_columns
