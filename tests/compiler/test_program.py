"""Program-IR validation and property tests."""

import pytest

from repro.automata.glushkov import ReadKind, build_automaton
from repro.automata.lnfa import LNFA
from repro.compiler.program import (
    CompiledMode,
    CompiledRegex,
    CompiledRuleset,
    CompileError,
    TileRequest,
)
from repro.hardware.config import TileMode
from repro.regex.charclass import CharClass
from repro.regex.parser import parse


def plain_auto():
    return build_automaton(parse("abc"))


class TestTileRequest:
    def test_total_columns(self):
        request = TileRequest(
            mode=TileMode.NBVA,
            states=2,
            cc_columns=2,
            bv_columns=10,
            set1_columns=1,
            depth=4,
            read=ReadKind.EXACT,
        )
        assert request.total_columns == 13

    def test_validate_capacity(self):
        request = TileRequest(mode=TileMode.NFA, states=129, cc_columns=129)
        with pytest.raises(CompileError):
            request.validate(128)

    def test_validate_negative(self):
        request = TileRequest(mode=TileMode.NFA, states=-1, cc_columns=1)
        with pytest.raises(CompileError):
            request.validate(128)

    def test_validate_bv_without_depth(self):
        request = TileRequest(
            mode=TileMode.NBVA, states=1, cc_columns=1, bv_columns=4
        )
        with pytest.raises(CompileError):
            request.validate(128)


class TestCompiledRegex:
    def test_lnfa_mode_requires_sequences(self):
        with pytest.raises(CompileError):
            CompiledRegex(regex_id=0, pattern="x", mode=CompiledMode.LNFA)

    def test_lnfa_flags_must_align(self):
        lnfa = LNFA((CharClass.of("a"),))
        with pytest.raises(CompileError):
            CompiledRegex(
                regex_id=0,
                pattern="a",
                mode=CompiledMode.LNFA,
                lnfas=(lnfa,),
                lnfa_cam_eligible=(True, False),
            )

    def test_automaton_modes_require_automaton(self):
        with pytest.raises(CompileError):
            CompiledRegex(regex_id=0, pattern="x", mode=CompiledMode.NFA)

    def test_states_by_mode(self):
        nfa = CompiledRegex(
            regex_id=0, pattern="abc", mode=CompiledMode.NFA, automaton=plain_auto()
        )
        assert nfa.states == 3
        lnfa = CompiledRegex(
            regex_id=1,
            pattern="ab",
            mode=CompiledMode.LNFA,
            lnfas=(LNFA((CharClass.of("a"), CharClass.of("b"))),),
            lnfa_cam_eligible=(True,),
        )
        assert lnfa.states == 2

    def test_bv_bits(self):
        counted = build_automaton(parse("a{40}"))
        regex = CompiledRegex(
            regex_id=0,
            pattern="a{40}",
            mode=CompiledMode.NBVA,
            automaton=counted,
        )
        assert regex.bv_bits == 40


class TestCompiledRuleset:
    def make(self):
        regex = CompiledRegex(
            regex_id=0, pattern="abc", mode=CompiledMode.NFA, automaton=plain_auto()
        )
        return CompiledRuleset(regexes=(regex,), rejected=(("bad(", "oops"),))

    def test_len_and_iter(self):
        ruleset = self.make()
        assert len(ruleset) == 1
        assert [r.pattern for r in ruleset] == ["abc"]

    def test_by_mode(self):
        ruleset = self.make()
        assert len(ruleset.by_mode(CompiledMode.NFA)) == 1
        assert ruleset.by_mode(CompiledMode.NBVA) == ()

    def test_fractions_with_empty_ruleset(self):
        empty = CompiledRuleset(regexes=())
        fractions = empty.mode_fractions()
        assert all(v == 0.0 for v in fractions.values())
