"""End-to-end compiler pipeline tests."""

import pytest
from hypothesis import given, settings

from repro.automata.nbva import NBVASimulator
from repro.automata.nfa import NFASimulator
from repro.automata.reference import ReferenceMatcher
from repro.automata.shift_and import MultiShiftAnd
from repro.compiler import (
    CompileError,
    CompiledMode,
    CompilerConfig,
    compile_pattern,
    compile_ruleset,
)
from repro.regex.parser import parse

from tests.helpers import inputs, regex_trees


def run_compiled(compiled, data: bytes) -> list[int]:
    """Execute a CompiledRegex functionally, whatever its mode."""
    if compiled.mode is CompiledMode.LNFA:
        packed = MultiShiftAnd(list(compiled.lnfas))
        return sorted({end for _, end in packed.find_matches(data)})
    if compiled.mode is CompiledMode.NBVA:
        return NBVASimulator(compiled.automaton).find_matches(data)
    return NFASimulator(compiled.automaton).find_matches(data)


class TestCompilePattern:
    def test_mode_selection_end_to_end(self):
        assert compile_pattern("ab{100}c").mode is CompiledMode.NBVA
        assert compile_pattern("a[bc]d").mode is CompiledMode.LNFA
        assert compile_pattern("ab*c").mode is CompiledMode.DFA
        assert compile_pattern("a(?:b.*|c)d").mode is CompiledMode.NFA

    def test_syntax_error_becomes_compile_error(self):
        with pytest.raises(CompileError):
            compile_pattern("a(b")

    def test_nullable_rejected(self):
        with pytest.raises(CompileError):
            compile_pattern("(?:abc)*")

    def test_forced_nfa(self):
        config = CompilerConfig(forced_mode=CompiledMode.NFA)
        compiled = compile_pattern("ab{100}c", config=config)
        assert compiled.mode is CompiledMode.NFA
        assert compiled.automaton.state_count == 102

    def test_forced_nbva_on_ineligible_raises(self):
        config = CompilerConfig(forced_mode=CompiledMode.NBVA)
        with pytest.raises(CompileError):
            compile_pattern("abc", config=config)

    def test_forced_lnfa_on_ineligible_raises(self):
        config = CompilerConfig(forced_mode=CompiledMode.LNFA)
        with pytest.raises(CompileError):
            compile_pattern("ab*c", config=config)

    def test_accepts_parsed_regex(self):
        compiled = compile_pattern(parse("abc"))
        assert compiled.pattern == "abc"

    def test_states_property(self):
        compiled = compile_pattern("a(?:b{1,2}|c)e")
        assert compiled.mode is CompiledMode.LNFA
        assert compiled.states == 10  # abe + abbe + ace

    def test_source_and_unfolded_states_recorded(self):
        compiled = compile_pattern("ab{100}c")
        assert compiled.source_states == 3
        assert compiled.unfolded_states == 102


class TestCompileRuleset:
    PATTERNS = ["ab{100}c", "a[bc]d", "ab*c", "a(b", "x{3,}y"]

    def test_rejections_collected(self):
        ruleset = compile_ruleset(self.PATTERNS)
        assert len(ruleset) == 4
        assert len(ruleset.rejected) == 1
        assert ruleset.rejected[0][0] == "a(b"

    def test_mode_counts(self):
        ruleset = compile_ruleset(self.PATTERNS)
        counts = ruleset.mode_counts()
        assert counts[CompiledMode.NBVA] == 1
        assert counts[CompiledMode.LNFA] == 1
        assert counts[CompiledMode.DFA] == 2  # ab*c and x{3,}y determinize small

    def test_mode_fractions_sum_to_one(self):
        fractions = compile_ruleset(self.PATTERNS).mode_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_by_mode(self):
        ruleset = compile_ruleset(self.PATTERNS)
        assert [r.pattern for r in ruleset.by_mode(CompiledMode.NBVA)] == [
            "ab{100}c"
        ]

    def test_regex_ids_are_dense(self):
        ruleset = compile_ruleset(self.PATTERNS)
        assert [r.regex_id for r in ruleset.regexes] == list(range(4))


class TestFunctionalCorrectness:
    CASES = [
        ("ab{12}c", b"a" + b"b" * 12 + b"c"),
        ("a[bc]d", b"abdacd"),
        ("ab*c", b"abbbcac"),
        ("b(?:a{7}|c{5})b", b"baaaaaaab"),
    ]

    @pytest.mark.parametrize("pattern,data", CASES)
    def test_compiled_matches_reference(self, pattern, data):
        compiled = compile_pattern(pattern)
        expected = ReferenceMatcher(parse(pattern)).find_matches(data)
        assert run_compiled(compiled, data) == expected

    @pytest.mark.parametrize("mode", list(CompiledMode))
    def test_forced_modes_agree(self, mode):
        pattern = "xa{20,30}y"
        if mode is CompiledMode.LNFA:
            pytest.skip("a{20,30} exceeds the LNFA blowup budget")
        config = CompilerConfig(forced_mode=mode)
        compiled = compile_pattern(pattern, config=config)
        data = b"x" + b"a" * 25 + b"y"
        expected = ReferenceMatcher(parse(pattern)).find_matches(data)
        assert run_compiled(compiled, data) == expected


@settings(max_examples=100, deadline=None)
@given(regex_trees(max_leaves=7, max_bound=5), inputs(max_size=18))
def test_pipeline_preserves_semantics(tree, data):
    """Whatever mode the decision graph picks, matches are exact."""
    try:
        compiled = compile_pattern(tree)
    except CompileError:
        return  # rejected patterns (nullable etc.) are fine
    expected = ReferenceMatcher(tree).find_matches(data)
    assert run_compiled(compiled, data) == expected
