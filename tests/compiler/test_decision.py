"""Tests for the Fig. 9 decision graph."""

import pytest

from repro.compiler.decision import decide, nbva_eligible
from repro.compiler.program import CompiledMode, CompileError
from repro.regex.parser import parse


def mode(pattern: str, threshold: int = 8, blowup: float = 2.0) -> CompiledMode:
    return decide(
        parse(pattern), unfold_threshold=threshold, lnfa_blowup=blowup
    ).mode


class TestDecide:
    def test_large_bounded_rep_is_nbva(self):
        assert mode("ab{100}c") is CompiledMode.NBVA

    def test_small_bounded_rep_unfolds_away(self):
        assert mode("ab{3}c") is CompiledMode.LNFA

    def test_fixed_sequence_is_lnfa(self):
        assert mode("a[bc].d") is CompiledMode.LNFA

    def test_prosite_style_motif_is_lnfa(self):
        assert mode("[ac][de]x[fg]") is CompiledMode.LNFA

    def test_star_is_dfa(self):
        # Low-activity, tiny subset construction: the cost model sends
        # the classic star pattern to the DFA tier.
        assert mode("ab*c") is CompiledMode.DFA

    def test_dense_alternation_with_star_is_nfa(self):
        # `.` keeps the predicted activity high; the density term keeps
        # dense patterns on the NFA mask stack (a calibration anchor).
        assert mode("a(?:b.*|c)d") is CompiledMode.NFA

    def test_nbva_priority_over_lnfa(self):
        # a{300} is linearizable (one 300-state sequence) but counting
        # compresses far more; NBVA wins.
        assert mode("xa{300}") is CompiledMode.NBVA

    def test_bounded_rep_with_star_body_is_nfa_or_nbva(self):
        # (ab*c){40}: star inside a counted body is fine -> NBVA.
        assert mode("(?:ab*c){40}") is CompiledMode.NBVA

    def test_open_bound_alone_is_not_nbva(self):
        # a{3,} always unfolds to aaa a*; with threshold >= 3 no counter
        # survives, and the unfolded star machine determinizes small.
        assert mode("xa{3,}") is CompiledMode.DFA

    def test_threshold_controls_the_boundary(self):
        assert mode("ab{10}", threshold=16) is CompiledMode.LNFA
        assert mode("ab{10}", threshold=4) is CompiledMode.NBVA

    def test_blowup_controls_lnfa(self):
        # (ab|c){3}x linearizes to 8 sequences totalling 44 states from 10
        # unfolded positions: a 4.4x blowup.
        pattern = "(?:ab|c){3}x"
        assert mode(pattern, blowup=5.0) is CompiledMode.LNFA
        # Past the allowance the cost model arbitrates NFA vs DFA; this
        # small low-activity machine determinizes cheaply.
        assert mode(pattern, blowup=1.01) is CompiledMode.DFA

    def test_nullable_rejected(self):
        with pytest.raises(CompileError):
            mode("a*")

    def test_decision_carries_eligibility(self):
        decision = decide(parse("ab{100}c"), unfold_threshold=8)
        assert decision.nbva_eligible
        assert decision.lnfa_eligible  # 102 states <= 2x of 102

    def test_decision_carries_trace(self):
        decision = decide(parse("ab*c"), unfold_threshold=8)
        trace = decision.trace
        assert trace is not None
        assert trace.mode is decision.mode
        assert decision.dfa_eligible
        assert trace.costs["dfa"] < trace.costs["nfa"]
        assert trace.eligibility()["dfa"]
        assert "cost model" in trace.reason

    def test_anchored_is_not_dfa_eligible(self):
        from repro.regex.parser import parse_anchored

        parsed = parse_anchored("^ab*c")
        decision = decide(
            parsed.regex, unfold_threshold=8, anchored_start=True
        )
        assert not decision.dfa_eligible
        assert decision.trace.features.dfa_states is None

    def test_soft_override_degrades_gracefully(self):
        from repro.regex.parser import parse_anchored

        parsed = parse_anchored("^ab*c")
        decision = decide(
            parsed.regex,
            unfold_threshold=8,
            mode_override=CompiledMode.DFA,
            anchored_start=True,
        )
        # Anchored: DFA-ineligible, so the override falls back.
        assert decision.mode is CompiledMode.NFA


class TestNbvaEligible:
    def test_eligible(self):
        assert nbva_eligible(parse("a{50}"), unfold_threshold=8)

    def test_below_threshold_not_eligible(self):
        assert not nbva_eligible(parse("a{5}"), unfold_threshold=8)

    def test_nullable_body_not_eligible(self):
        assert not nbva_eligible(parse("(?:a?){50}"), unfold_threshold=8)

    def test_open_bound_not_eligible(self):
        assert not nbva_eligible(parse("a{50,}"), unfold_threshold=8)

    def test_range_eligible(self):
        assert nbva_eligible(parse("a{10,60}"), unfold_threshold=8)
