"""Unit tests for the cost-model feature extraction and scoring."""

import math

import pytest

from repro.compiler.costmodel import (
    DFA_MAX_SOURCE_STATES,
    DFA_STATE_BUDGET,
    MODE_CHOICES,
    MODE_ENV,
    ModeFeatures,
    dfa_state_count,
    extract_features,
    mode_costs,
    mode_override,
    plan_mode,
    resolve_mode,
)
from repro.compiler.program import CompiledMode, CompileError
from repro.regex.parser import parse


class TestFeatures:
    def test_star_pattern_features(self):
        f = extract_features(parse("ab*c"))
        assert f.source_states == 3
        assert f.unfolded_states == 3
        assert f.dfa_eligible
        assert f.dfa_states is not None and f.dfa_states <= 5
        assert 0.0 < f.predicted_activity < 0.05  # three single-char labels
        assert f.class_fanout == 3
        assert not f.anchored

    def test_activity_tracks_label_density(self):
        sparse = extract_features(parse("abc"))
        dense = extract_features(parse("a.c"))
        assert sparse.predicted_activity < dense.predicted_activity
        assert dense.predicted_activity > 0.3  # `.` is a full-density label

    def test_blowup_family_is_dfa_ineligible(self):
        # a.{n}b determinizes to ~2^n states; past the budget the regex
        # must stay off the DFA tier.
        f = extract_features(parse("a.{12}b"))
        assert f.dfa_states is None
        assert not f.dfa_eligible

    def test_anchored_is_dfa_ineligible(self):
        assert dfa_state_count(parse("abc"), anchored=True) is None
        assert dfa_state_count(parse("abc"), anchored=False) is not None

    def test_oversized_source_is_not_determinized(self):
        # The source-size guard rejects without attempting construction.
        pattern = "a" * (DFA_MAX_SOURCE_STATES + 1)
        assert dfa_state_count(parse(pattern), anchored=False) is None


class TestCosts:
    def test_ineligible_modes_cost_infinity(self):
        f = extract_features(parse("ab*c"))  # no counter, no linearization
        costs = mode_costs(f)
        assert costs["nbva"] == math.inf
        assert costs["lnfa"] == math.inf
        assert costs["nfa"] < math.inf
        assert costs["dfa"] < math.inf

    def test_low_activity_prefers_dfa(self):
        costs = mode_costs(extract_features(parse("ab*c")))
        assert costs["dfa"] < costs["nfa"]

    def test_dense_pattern_prefers_nfa(self):
        costs = mode_costs(extract_features(parse("a(?:b.*|c)d")))
        assert costs["nfa"] < costs["dfa"]

    def test_density_term_scales_with_subset_size(self):
        small = ModeFeatures(
            source_states=3, unfolded_states=3, predicted_activity=0.1,
            class_fanout=2, dfa_states=4, nbva_eligible=False,
            lnfa_eligible=False, anchored=False,
        )
        large = ModeFeatures(
            source_states=3, unfolded_states=3, predicted_activity=0.1,
            class_fanout=2, dfa_states=200, nbva_eligible=False,
            lnfa_eligible=False, anchored=False,
        )
        assert mode_costs(small)["dfa"] < mode_costs(large)["dfa"]


class TestPlanMode:
    def test_nullable_raises(self):
        with pytest.raises(CompileError):
            plan_mode(parse("a*"))

    def test_plan_carries_trace(self):
        plan = plan_mode(parse("ab*c"))
        assert plan.mode is CompiledMode.DFA
        assert plan.trace.mode is plan.mode
        assert plan.trace.costs["dfa"] < plan.trace.costs["nfa"]
        assert plan.trace.features.dfa_eligible

    def test_structural_precedence_beats_cost(self):
        # NBVA/LNFA are capacity wins; the cost model only arbitrates
        # the NFA-vs-DFA tier.
        assert plan_mode(parse("ab{100}c")).mode is CompiledMode.NBVA
        assert plan_mode(parse("a[bc]d")).mode is CompiledMode.LNFA

    def test_budget_knob_flips_the_decision(self):
        # A budget too small for even ab*c's subsets forces NFA.
        plan = plan_mode(parse("ab*c"), dfa_state_budget=2)
        assert plan.mode is CompiledMode.NFA
        assert "budget" in plan.trace.reason

    def test_override_wins_when_eligible(self):
        plan = plan_mode(parse("a[bc]d"), mode_override=CompiledMode.DFA)
        assert plan.mode is CompiledMode.DFA
        assert "override" in plan.trace.reason

    def test_override_falls_back_when_ineligible(self):
        plan = plan_mode(parse("a.{12}b"), mode_override=CompiledMode.DFA)
        assert plan.mode is not CompiledMode.DFA


class TestModeResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "nfa")
        assert resolve_mode("dfa") == "dfa"

    def test_auto_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "lnfa")
        assert resolve_mode("auto") == "lnfa"
        assert resolve_mode(None) == "lnfa"

    def test_unknown_env_resolves_to_auto(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "warp-speed")
        assert resolve_mode(None) == "auto"

    def test_unknown_explicit_raises(self):
        with pytest.raises(ValueError):
            resolve_mode("warp-speed")

    def test_mode_override_mapping(self, monkeypatch):
        monkeypatch.delenv(MODE_ENV, raising=False)
        assert mode_override("auto") is None
        assert mode_override(None) is None
        assert mode_override("dfa") is CompiledMode.DFA
        assert mode_override("nbva") is CompiledMode.NBVA

    def test_choices_cover_every_mode(self):
        assert set(MODE_CHOICES) == {
            "auto", "nfa", "dfa", "nbva", "lnfa"
        }
        assert DFA_STATE_BUDGET == 256
