"""Unit tests for the cost-model feature extraction and scoring."""

import math

import pytest

from repro.compiler.costmodel import (
    CALIBRATION_VERSION,
    CONSTANT_RANGE,
    DEFAULT_CONSTANTS,
    DFA_MAX_SOURCE_STATES,
    DFA_STATE_BUDGET,
    MODE_CHOICES,
    MODE_ENV,
    CostConstants,
    ModeFeatures,
    active_constants,
    calibration_blob_name,
    dfa_state_count,
    extract_features,
    mode_costs,
    invalidate_constants_cache,
    mode_override,
    plan_mode,
    resolve_mode,
)
from repro.compiler.program import CompiledMode, CompileError
from repro.regex.parser import parse


class TestFeatures:
    def test_star_pattern_features(self):
        f = extract_features(parse("ab*c"))
        assert f.source_states == 3
        assert f.unfolded_states == 3
        assert f.dfa_eligible
        assert f.dfa_states is not None and f.dfa_states <= 5
        assert 0.0 < f.predicted_activity < 0.05  # three single-char labels
        assert f.class_fanout == 3
        assert not f.anchored

    def test_activity_tracks_label_density(self):
        sparse = extract_features(parse("abc"))
        dense = extract_features(parse("a.c"))
        assert sparse.predicted_activity < dense.predicted_activity
        assert dense.predicted_activity > 0.3  # `.` is a full-density label

    def test_blowup_family_is_dfa_ineligible(self):
        # a.{n}b determinizes to ~2^n states; past the budget the regex
        # must stay off the DFA tier.
        f = extract_features(parse("a.{12}b"))
        assert f.dfa_states is None
        assert not f.dfa_eligible

    def test_anchored_is_dfa_ineligible(self):
        assert dfa_state_count(parse("abc"), anchored=True) is None
        assert dfa_state_count(parse("abc"), anchored=False) is not None

    def test_oversized_source_is_not_determinized(self):
        # The source-size guard rejects without attempting construction.
        pattern = "a" * (DFA_MAX_SOURCE_STATES + 1)
        assert dfa_state_count(parse(pattern), anchored=False) is None


class TestCosts:
    def test_ineligible_modes_cost_infinity(self):
        f = extract_features(parse("ab*c"))  # no counter, no linearization
        costs = mode_costs(f)
        assert costs["nbva"] == math.inf
        assert costs["lnfa"] == math.inf
        assert costs["nfa"] < math.inf
        assert costs["dfa"] < math.inf

    def test_low_activity_prefers_dfa(self):
        costs = mode_costs(extract_features(parse("ab*c")))
        assert costs["dfa"] < costs["nfa"]

    def test_dense_pattern_prefers_nfa(self):
        costs = mode_costs(extract_features(parse("a(?:b.*|c)d")))
        assert costs["nfa"] < costs["dfa"]

    def test_density_term_scales_with_subset_size(self):
        small = ModeFeatures(
            source_states=3, unfolded_states=3, predicted_activity=0.1,
            class_fanout=2, dfa_states=4, nbva_eligible=False,
            lnfa_eligible=False, anchored=False,
        )
        large = ModeFeatures(
            source_states=3, unfolded_states=3, predicted_activity=0.1,
            class_fanout=2, dfa_states=200, nbva_eligible=False,
            lnfa_eligible=False, anchored=False,
        )
        assert mode_costs(small)["dfa"] < mode_costs(large)["dfa"]


class TestPlanMode:
    def test_nullable_raises(self):
        with pytest.raises(CompileError):
            plan_mode(parse("a*"))

    def test_plan_carries_trace(self):
        plan = plan_mode(parse("ab*c"))
        assert plan.mode is CompiledMode.DFA
        assert plan.trace.mode is plan.mode
        assert plan.trace.costs["dfa"] < plan.trace.costs["nfa"]
        assert plan.trace.features.dfa_eligible

    def test_structural_precedence_beats_cost(self):
        # NBVA/LNFA are capacity wins; the cost model only arbitrates
        # the NFA-vs-DFA tier.
        assert plan_mode(parse("ab{100}c")).mode is CompiledMode.NBVA
        assert plan_mode(parse("a[bc]d")).mode is CompiledMode.LNFA

    def test_budget_knob_flips_the_decision(self):
        # A budget too small for even ab*c's subsets forces NFA.
        plan = plan_mode(parse("ab*c"), dfa_state_budget=2)
        assert plan.mode is CompiledMode.NFA
        assert "budget" in plan.trace.reason

    def test_override_wins_when_eligible(self):
        plan = plan_mode(parse("a[bc]d"), mode_override=CompiledMode.DFA)
        assert plan.mode is CompiledMode.DFA
        assert "override" in plan.trace.reason

    def test_override_falls_back_when_ineligible(self):
        plan = plan_mode(parse("a.{12}b"), mode_override=CompiledMode.DFA)
        assert plan.mode is not CompiledMode.DFA


class TestModeResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "nfa")
        assert resolve_mode("dfa") == "dfa"

    def test_auto_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "lnfa")
        assert resolve_mode("auto") == "lnfa"
        assert resolve_mode(None) == "lnfa"

    def test_unknown_env_resolves_to_auto(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "warp-speed")
        assert resolve_mode(None) == "auto"

    def test_unknown_explicit_raises(self):
        with pytest.raises(ValueError):
            resolve_mode("warp-speed")

    def test_mode_override_mapping(self, monkeypatch):
        monkeypatch.delenv(MODE_ENV, raising=False)
        assert mode_override("auto") is None
        assert mode_override(None) is None
        assert mode_override("dfa") is CompiledMode.DFA
        assert mode_override("nbva") is CompiledMode.NBVA

    def test_choices_cover_every_mode(self):
        assert set(MODE_CHOICES) == {
            "auto", "nfa", "dfa", "nbva", "lnfa"
        }
        assert DFA_STATE_BUDGET == 256


class TestCalibratedConstants:
    """Measured constants: persistence, loading, and degradation."""

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        from repro.engine.cache import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        invalidate_constants_cache()
        yield
        invalidate_constants_cache()

    def _store(self, payload):
        from repro.engine.cache import CompileCache

        CompileCache().put_blob(calibration_blob_name("python"), payload)
        invalidate_constants_cache()

    def test_uncalibrated_backend_gets_defaults(self):
        constants = active_constants("python")
        assert constants == DEFAULT_CONSTANTS
        assert constants.source == "default"

    def test_measured_constants_load_and_score(self):
        self._store(
            {
                "version": CALIBRATION_VERSION,
                "backend": "python",
                "constants": {
                    "nfa_base": 1.0,
                    "nfa_active": 2.5,
                    "dfa_lookup": 0.2,
                    "dfa_density": 3.0,
                    "nbva_base": 1.1,
                    "lnfa_word": 0.4,
                },
            }
        )
        constants = active_constants("python")
        assert constants.source == "measured"
        assert constants.backend == "python"
        assert constants.nfa_active == 2.5
        # mode_costs scores against the loaded constants.
        features = extract_features(parse("abcd"))
        costs = mode_costs(features, constants)
        expected = 1.0 + 2.5 * features.predicted_activity * features.unfolded_states
        assert costs["nfa"] == pytest.approx(expected)

    def test_version_skew_degrades_to_defaults(self):
        self._store(
            {
                "version": CALIBRATION_VERSION + 1,
                "constants": {"nfa_base": 1.0},
            }
        )
        assert active_constants("python") == DEFAULT_CONSTANTS

    def test_malformed_payload_degrades_to_defaults(self):
        self._store({"version": CALIBRATION_VERSION, "constants": "junk"})
        assert active_constants("python") == DEFAULT_CONSTANTS

    def test_implausible_values_are_clamped(self):
        lo, hi = CONSTANT_RANGE
        self._store(
            {
                "version": CALIBRATION_VERSION,
                "constants": {
                    "nfa_base": 1.0,
                    "nfa_active": 1e9,
                    "dfa_lookup": 0.0,
                    "dfa_density": 1.0,
                    "nbva_base": 1.0,
                    "lnfa_word": 1.0,
                },
            }
        )
        constants = active_constants("python")
        assert constants.nfa_active == hi
        assert constants.dfa_lookup == lo

    def test_calibrations_are_per_backend(self):
        self._store(
            {
                "version": CALIBRATION_VERSION,
                "constants": dict(
                    DEFAULT_CONSTANTS.numbers(), nfa_active=9.0
                ),
            }
        )
        assert active_constants("python").source == "measured"
        assert active_constants("fused").source == "default"

    def test_save_calibration_round_trips(self):
        from repro.compiler.calibrate import CalibrationReport, save_calibration

        report = CalibrationReport(
            backend="python",
            constants=CostConstants(
                nfa_active=5.0, source="measured", backend="python"
            ),
            measurements={"nfa_sparse": 1e-8},
            probe_bytes=1024,
        )
        save_calibration(report)
        loaded = active_constants("python")
        assert loaded.source == "measured"
        assert loaded.nfa_active == 5.0


class TestCalibrationSolver:
    def test_two_point_solves_affine_fit(self):
        from repro.compiler.calibrate import _two_point

        intercept, slope = _two_point(10.0, 30.0, 1.0, 5.0)
        assert intercept == pytest.approx(5.0)
        assert slope == pytest.approx(5.0)

    def test_two_point_rejects_degenerate_inputs(self):
        from repro.compiler.calibrate import _two_point

        assert _two_point(None, 30.0, 1.0, 5.0) is None
        assert _two_point(10.0, 30.0, 5.0, 1.0) is None  # x not increasing
        assert _two_point(30.0, 10.0, 1.0, 5.0) is None  # negative slope

    def test_probe_patterns_are_eligible(self):
        """Every probe must actually compile in its forced mode, or the
        calibration silently degrades that constant to its default."""
        from repro.compiler import CompilerConfig, compile_ruleset
        from repro.compiler import calibrate as cal

        for pattern, mode in (
            (cal.NFA_SPARSE, CompiledMode.NFA),
            (cal.NFA_DENSE, CompiledMode.NFA),
            (cal.DFA_SPARSE, CompiledMode.DFA),
            (cal.DFA_DENSE, CompiledMode.DFA),
            (cal.NBVA_PROBE, CompiledMode.NBVA),
        ):
            ruleset = compile_ruleset(
                [pattern], CompilerConfig(forced_mode=mode)
            )
            assert not ruleset.rejected, (pattern, mode)
