"""Placement and global-port accounting tests."""

from repro.automata.glushkov import build_automaton
from repro.compiler.nfa_compiler import nfa_tile_requests, place_nfa
from repro.compiler.placement import Placement, cross_tile_edges, global_ports
from repro.hardware.config import DEFAULT_CONFIG
from repro.regex.parser import parse

HW = DEFAULT_CONFIG


def chain_automaton(n: int):
    return build_automaton(parse("a" * n))


class TestPlacement:
    def test_tile_count(self):
        assert Placement((0, 0, 1, 1, 2)).tile_count == 3
        assert Placement(()).tile_count == 0

    def test_states_in(self):
        placement = Placement((0, 1, 0, 1))
        assert placement.states_in(0) == [0, 2]
        assert placement.states_in(1) == [1, 3]


class TestPlaceNfa:
    def test_small_regex_single_tile(self):
        auto = chain_automaton(10)
        placement = place_nfa(auto, HW)
        assert placement.tile_count == 1

    def test_split_at_column_capacity(self):
        auto = chain_automaton(200)
        placement = place_nfa(auto, HW)
        assert placement.tile_count == 2
        assert len(placement.states_in(0)) == HW.cam_cols

    def test_multicode_classes_cost_more_columns(self):
        # each scattered class needs 2+ codes, so fewer states fit a tile
        pattern = "[\\x01\\x41]" * 100
        auto = build_automaton(parse(pattern))
        placement = place_nfa(auto, HW)
        assert placement.tile_count == 2


class TestGlobalPorts:
    def test_no_ports_within_one_tile(self):
        auto = chain_automaton(10)
        placement = place_nfa(auto, HW)
        assert global_ports(auto, placement) == [0]

    def test_chain_crossing_costs_one_port_each_side(self):
        auto = chain_automaton(200)
        placement = place_nfa(auto, HW)
        ports = global_ports(auto, placement)
        # one aggregated wire out of tile 0, one destination in tile 1
        assert ports == [1, 1]

    def test_fanin_aggregates_to_one_wire(self):
        """The optional-chain exit (many sources, one destination across
        the boundary) costs one port per side, not one per source."""
        auto = build_automaton(parse("x[ab]{120,126}z"), counters=False)
        placement = place_nfa(auto, HW)
        ports = global_ports(auto, placement)
        assert max(ports) <= HW.global_ports_per_tile

    def test_cross_tile_edges_counted(self):
        auto = chain_automaton(200)
        placement = place_nfa(auto, HW)
        assert cross_tile_edges(auto, placement) == 1
        one_tile = place_nfa(chain_automaton(10), HW)
        assert cross_tile_edges(chain_automaton(10), one_tile) == 0


class TestNfaTileRequests:
    def test_requests_cover_all_states(self):
        auto = chain_automaton(200)
        placement = place_nfa(auto, HW)
        requests = nfa_tile_requests(auto, placement, HW)
        assert sum(r.states for r in requests) == 200
        assert all(r.total_columns <= HW.cam_cols for r in requests)
        assert all(r.bv_columns == 0 for r in requests)
