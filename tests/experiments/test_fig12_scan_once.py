"""Fig. 12 scans each (automaton, input) exactly once across all designs.

The acceptance property of the shared-trace flow: pricing RAP, BVAP,
CAMA, and CA on one benchmark performs one functional scan per distinct
regex fingerprint (and one per LNFA bin), never re-scanning the input
for another architecture — CAMA and CA compile to identical NFAs and
must share every scan.
"""

from repro.core import trace as trace_mod
from repro.core.trace import ActivityTrace, regex_fingerprint
from repro.experiments.common import (
    ALL_BENCHMARK_NAMES,
    ExperimentConfig,
    build_workload,
)
from repro.experiments.fig12_asic import ARCHITECTURES, simulate_benchmark

SMALL = ExperimentConfig(benchmark_size=6, input_length=1500)


def test_each_fingerprint_scanned_once(monkeypatch):
    real_regex = trace_mod.collect_regex_activity
    real_bin = trace_mod.collect_bin_activity
    regex_scans: list = []
    bin_scans: list = []
    requests: list = []
    monkeypatch.setattr(
        trace_mod,
        "collect_regex_activity",
        lambda c, d: regex_scans.append(regex_fingerprint(c)) or real_regex(c, d),
    )
    monkeypatch.setattr(
        trace_mod,
        "collect_bin_activity",
        lambda b, d, h: bin_scans.append(id(b)) or real_bin(b, d, h),
    )
    real_request = ActivityTrace.regex_activity
    monkeypatch.setattr(
        ActivityTrace,
        "regex_activity",
        lambda self, c: requests.append(1) or real_request(self, c),
    )

    name = ALL_BENCHMARK_NAMES[0]
    workload = build_workload(name, SMALL)
    trace = ActivityTrace(workload.data)
    row = simulate_benchmark(workload, SMALL, trace)

    # Every architecture actually priced, from this very trace.
    assert set(row.points) == set(ARCHITECTURES)
    # No fingerprint (and no bin) was ever scanned twice.
    assert len(regex_scans) == len(set(regex_scans))
    assert len(bin_scans) == len(set(bin_scans))
    # Every scan went through the shared trace's miss counter.
    assert trace.scan_count == len(regex_scans) + len(bin_scans)
    # Sharing genuinely happened: the four designs requested far more
    # activities than were scanned (CAMA and CA alone request identical
    # fingerprints for every pattern).
    assert len(requests) > len(regex_scans)


def test_private_trace_is_equivalent():
    """A caller-supplied trace and the default private one agree."""
    name = ALL_BENCHMARK_NAMES[0]
    workload = build_workload(name, SMALL)
    shared = simulate_benchmark(workload, SMALL, ActivityTrace(workload.data))
    private = simulate_benchmark(workload, SMALL)
    for arch in ARCHITECTURES:
        assert shared.points[arch] == private.points[arch]
