"""Tests for the experiment plumbing (workload prep, rendering, output)."""

import json

import pytest

from repro.compiler import CompiledMode
from repro.experiments.common import (
    ALL_BENCHMARK_NAMES,
    ExperimentConfig,
    build_mode_workload,
    build_workload,
    compile_bvap_flavor,
    compile_decided,
    compile_forced,
    render_table,
    save_csv,
    save_json,
)

SMALL = ExperimentConfig(benchmark_size=12, input_length=1200)


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.benchmark_size == 24
        assert config.input_length == 6000

    def test_scaled_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2")
        config = ExperimentConfig.scaled()
        assert config.benchmark_size == 48
        assert config.input_length == 12000

    def test_scaled_ignores_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "banana")
        assert ExperimentConfig.scaled().benchmark_size == 24

    def test_scaled_floors(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")
        config = ExperimentConfig.scaled()
        assert config.benchmark_size >= 6
        assert config.input_length >= 1500


class TestWorkloads:
    def test_build_workload_shape(self):
        workload = build_workload("Snort", SMALL)
        assert workload.name == "Snort"
        assert len(workload.data) == SMALL.input_length
        assert len(workload.benchmark.patterns) == SMALL.benchmark_size
        assert workload.chosen_depth == 8
        assert workload.chosen_bin_size == 16

    def test_patterns_for_mode(self):
        workload = build_workload("Snort", SMALL)
        nbva = workload.patterns_for_mode(CompiledMode.NBVA)
        assert nbva
        assert set(nbva) <= set(workload.benchmark.patterns)

    def test_build_mode_workload_is_single_mode(self):
        workload = build_mode_workload("Yara", CompiledMode.LNFA, SMALL)
        assert set(workload.benchmark.intended_modes) == {"LNFA"}
        assert len(workload.benchmark.patterns) >= 12

    def test_workloads_deterministic(self):
        a = build_workload("Yara", SMALL)
        b = build_workload("Yara", SMALL)
        assert a.benchmark.patterns == b.benchmark.patterns
        assert a.data == b.data


class TestCompileHelpers:
    def test_compile_decided_uses_depth(self):
        workload = build_mode_workload("ClamAV", CompiledMode.NBVA, SMALL)
        ruleset = compile_decided(workload.benchmark.patterns, SMALL, 32)
        depths = {
            t.depth
            for r in ruleset
            for t in r.tile_requests
            if t.depth is not None
        }
        assert depths == {32}

    def test_compile_forced(self):
        workload = build_mode_workload("ClamAV", CompiledMode.NBVA, SMALL)
        ruleset = compile_forced(
            workload.benchmark.patterns, CompiledMode.NFA, SMALL
        )
        assert all(r.mode is CompiledMode.NFA for r in ruleset)

    def test_compile_bvap_flavor_maps_lnfa_to_nfa(self):
        pairs = [("ab{40}c", "NBVA"), ("abcd", "LNFA"), ("ab*c", "NFA")]
        ruleset = compile_bvap_flavor(pairs, SMALL)
        modes = [r.mode for r in ruleset]
        assert modes == [
            CompiledMode.NBVA,
            CompiledMode.NFA,
            CompiledMode.NFA,
        ]

    def test_compile_rejections_raise(self):
        with pytest.raises(RuntimeError):
            compile_decided(["a("], SMALL, 8)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"],
            [("alpha", 1.25), ("b", 100.0)],
            title="Title",
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3] and "1.25" in lines[3]
        assert "100" in lines[4]

    def test_float_formatting(self):
        from repro.experiments.common import _fmt

        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1234"
        assert _fmt(3.14159) == "3.14"
        assert _fmt(0.01234) == "0.012"
        assert _fmt("text") == "text"

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestOutputs:
    def test_save_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_json("unit", {"x": 1})
        assert json.loads(path.read_text()) == {"x": 1}
        assert path.parent == tmp_path

    def test_save_csv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_csv("unit", ["a", "b"], [(1, 2.5), (3, 4.0)])
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.50"

    def test_benchmark_name_list(self):
        assert len(ALL_BENCHMARK_NAMES) == 7
