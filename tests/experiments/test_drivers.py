"""Small-scale smoke+shape tests for every experiment driver.

The benchmarks/ harness runs the drivers at full scale with the paper's
shape assertions; these unit tests exercise each driver's machinery at
the smallest useful scale so a broken driver fails fast in `pytest
tests/`.
"""

import pytest

from repro.experiments import (
    fig01_model_mix,
    fig10_dse,
    fig11_breakdown,
    fig12_asic,
    fig13_cpu_gpu,
    table2_nbva,
    table3_lnfa,
    table4_fpga,
)
from repro.experiments.common import ExperimentConfig

TINY = ExperimentConfig(benchmark_size=10, input_length=1000)


@pytest.fixture(autouse=True)
def _isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))


class TestFig01:
    def test_runs_and_renders(self):
        result = fig01_model_mix.run(TINY)
        assert len(result.rows) == 7
        assert "Fig. 1" in result.to_table()

    def test_row_lookup(self):
        result = fig01_model_mix.run(TINY)
        assert result.row("ClamAV").nbva > 0.5


class TestFig10:
    def test_sweep_structure(self):
        result = fig10_dse.run(TINY)
        assert len(result.nbva_sweeps) == 6  # Prosite excluded
        assert len(result.lnfa_sweeps) == 7
        sweep = result.sweep("nbva", "ClamAV")
        assert [p.parameter for p in sweep.points] == [4, 8, 16, 32]
        norm = sweep.normalized()
        assert norm[0][1:] == (1.0, 1.0, 1.0)  # self-normalized baseline

    def test_table_contains_chosen_markers(self):
        text = fig10_dse.run(TINY).to_table()
        assert "*" in text


class TestTable2:
    def test_rows_and_consistency(self):
        result = table2_nbva.run(TINY)
        assert [r.benchmark for r in result.rows] == [
            "RegexLib",
            "SpamAssassin",
            "Snort",
            "Suricata",
            "Yara",
            "ClamAV",
        ]
        for row in result.rows:
            for arch in table2_nbva.ARCHITECTURES:
                assert row.energy_uj[arch] > 0
                assert row.area_mm2[arch] > 0
                assert row.throughput[arch] > 0

    def test_normalized_baseline_is_one(self):
        result = table2_nbva.run(TINY)
        norm = result.normalized_averages()
        for metric in norm:
            assert norm[metric]["NBVA"] == pytest.approx(1.0)


class TestTable3:
    def test_runs_all_seven(self):
        result = table3_lnfa.run(TINY)
        assert len(result.rows) == 7
        assert "Prosite" in {r.benchmark for r in result.rows}


class TestFig11:
    def test_shares_are_positive_distribution(self):
        result = fig11_breakdown.run(TINY)
        total = sum(
            result.fraction(mode, "energy_uj")
            for mode in ("NFA", "NBVA", "LNFA")
        )
        assert total == pytest.approx(1.0)


class TestFig12:
    def test_ratios_and_tables(self):
        result = fig12_asic.run(TINY)
        assert len(result.rows) == 7
        for arch in ("BVAP", "CAMA", "CA"):
            assert result.mean_ratio(arch, "area_mm2") > 0
        row = result.rows[0]
        assert row.ratio("RAP", "area_mm2") == pytest.approx(1.0)
        assert "Fig. 12" in result.ratio_table()

    def test_archpoint_derived_metrics(self):
        point = fig12_asic.ArchPoint(
            energy_uj=1.0, area_mm2=2.0, throughput=2.0, power_w=0.5
        )
        assert point.energy_eff == pytest.approx(4.0)
        assert point.compute_density == pytest.approx(1.0)
        with pytest.raises(KeyError):
            point.metric("nope")


class TestFig13:
    def test_rows(self):
        result = fig13_cpu_gpu.run(TINY)
        assert len(result.rows) == 7
        for row in result.rows:
            assert row.rap_efficiency > row.gpu_efficiency > row.cpu_efficiency


class TestSummary:
    def test_full_run_produces_report(self, tmp_path):
        from repro.experiments import summary

        result = summary.run(TINY)
        assert set(result.artifacts) == {
            "fig1",
            "fig10",
            "table2",
            "table3",
            "fig11",
            "fig12",
            "fig13",
            "table4",
        }
        assert "Headline claims" in result.report
        assert "RAP vs CAMA" in result.report
        assert (tmp_path / "summary.md").exists()

    def test_cli_lists_all(self):
        from repro.cli import EXPERIMENTS

        assert "all" in EXPERIMENTS


class TestTable4:
    def test_rows(self):
        result = table4_fpga.run(TINY)
        assert [r.benchmark for r in result.rows] == [
            "Brill",
            "ClamAV",
            "Dotstar",
            "PowerEN",
            "Snort",
        ]
        for row in result.rows:
            assert row.throughput_ratio > 1
