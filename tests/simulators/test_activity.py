"""Activity collection tests (the event source for every energy model)."""

import pytest

from repro.compiler import CompiledMode, CompilerConfig, compile_pattern
from repro.hardware.config import DEFAULT_CONFIG
from repro.mapping.binning import BinItem, plan_bins
from repro.simulators.activity import (
    collect_bin_activity,
    collect_regex_activity,
)


def compiled(pattern, mode=None, depth=8):
    return compile_pattern(
        pattern, 0, CompilerConfig(bv_depth=depth, forced_mode=mode)
    )


class TestRegexActivity:
    def test_nfa_activity(self):
        regex = compiled("ab*c", CompiledMode.NFA)
        activity = collect_regex_activity(regex, b"abbbc" * 4)
        assert activity.cycles == 20
        assert activity.matches == [4, 9, 14, 19]
        assert activity.active_state_cycles > 0
        assert activity.bv_phase_cycles == 0
        assert 0 < activity.mean_activity <= 3

    def test_nbva_activity(self):
        regex = compiled("za{12}")
        assert regex.mode is CompiledMode.NBVA
        data = b"z" + b"a" * 12 + b"x" * 10
        activity = collect_regex_activity(regex, data)
        assert activity.matches == [12]
        # word alignment rewrote a{12} at depth 8 into a{8}aaaa: the
        # counter runs for 8 symbols, the unfolded tail for the rest
        assert activity.bv_phase_cycles == 8
        assert activity.bv_cycle_indices == list(range(1, 9))
        assert activity.set1_events > 0
        assert activity.shift_events > 0

    def test_lnfa_regex_rejected(self):
        regex = compiled("abcd")
        assert regex.mode is CompiledMode.LNFA
        with pytest.raises(ValueError):
            collect_regex_activity(regex, b"abcd")

    def test_anchored_activity(self):
        regex = compiled("^ab", CompiledMode.NFA)
        activity = collect_regex_activity(regex, b"abab")
        assert activity.matches == [1]

    def test_empty_input(self):
        regex = compiled("ab", CompiledMode.NFA)
        activity = collect_regex_activity(regex, b"")
        assert activity.cycles == 0
        assert activity.mean_activity == 0.0


class TestBinActivity:
    def bin_of(self, patterns, bin_size=8):
        items = []
        for k, pattern in enumerate(patterns):
            regex = compiled(pattern)
            assert regex.mode is CompiledMode.LNFA
            items.append(
                BinItem(
                    regex_id=k,
                    lnfa_index=0,
                    lnfa=regex.lnfas[0],
                    cam_eligible=True,
                )
            )
        bins = plan_bins(
            items, hw=DEFAULT_CONFIG, bin_size=bin_size, overlay_split=False
        )
        assert len(bins) == 1
        return bins[0]

    def test_matches_per_regex(self):
        bin_obj = self.bin_of(["abc", "xyz"])
        activity = collect_bin_activity(bin_obj, b"abc xyz abc", DEFAULT_CONFIG)
        assert activity.matches[0] == [2, 10]
        assert activity.matches[1] == [6]

    def test_initial_tile_always_awake(self):
        bin_obj = self.bin_of(["abcdefgh" * 12])  # long -> multiple tiles
        data = b"zzzz" * 25
        activity = collect_bin_activity(bin_obj, data, DEFAULT_CONFIG)
        assert activity.tile_active_cycles[0] == len(data)

    def test_downstream_tiles_gated_without_matches(self):
        bin_obj = self.bin_of(["abcdefgh" * 12])
        data = b"zzzz" * 25  # never matches the first state
        activity = collect_bin_activity(bin_obj, data, DEFAULT_CONFIG)
        assert all(c == 0 for c in activity.tile_active_cycles[1:])
        assert activity.woken_tile_cycles == len(data)

    def test_matching_prefix_wakes_downstream_tiles(self):
        pattern = "ab" * 80  # 160 states -> 2+ tiles at 128/region
        bin_obj = self.bin_of([pattern], bin_size=1)
        data = b"ab" * 90
        activity = collect_bin_activity(bin_obj, data, DEFAULT_CONFIG)
        assert bin_obj.tiles >= 2
        assert activity.tile_active_cycles[1] > 0

    def test_cycles_counted(self):
        bin_obj = self.bin_of(["abc"])
        activity = collect_bin_activity(bin_obj, b"x" * 37, DEFAULT_CONFIG)
        assert activity.cycles == 37
