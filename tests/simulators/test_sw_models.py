"""CPU / GPU / FPGA analytical model tests."""

import pytest

from repro.compiler import CompilerConfig, compile_ruleset
from repro.simulators.sw_models import CPUModel, FPGAModel, GPUModel


def ruleset(n_patterns: int = 5):
    return compile_ruleset(
        [f"pattern{i}xyz" for i in range(n_patterns)], CompilerConfig()
    )


class TestCPUModel:
    def test_operating_point_shape(self):
        point = CPUModel().operating_point(ruleset())
        assert 0 < point.throughput_gchps < 1.0
        assert point.power_w == pytest.approx(90.0)

    def test_throughput_degrades_with_pattern_count(self):
        small = CPUModel().operating_point(ruleset(3))
        large = CPUModel().operating_point(ruleset(300))
        assert large.throughput_gchps < small.throughput_gchps

    def test_energy_accounting(self):
        point = CPUModel().operating_point(ruleset())
        energy = point.energy_uj(100_000)
        seconds = 100_000 / (point.throughput_gchps * 1e9)
        assert energy == pytest.approx(point.power_w * seconds * 1e6)


class TestGPUModel:
    def test_faster_than_cpu(self):
        rs = ruleset(50)
        cpu = CPUModel().operating_point(rs)
        gpu = GPUModel().operating_point(rs)
        assert gpu.throughput_gchps > cpu.throughput_gchps

    def test_lower_power_than_cpu(self):
        rs = ruleset()
        assert (
            GPUModel().operating_point(rs).power_w
            < CPUModel().operating_point(rs).power_w
        )

    def test_small_sets_hold_base_throughput(self):
        rs = ruleset(3)
        assert GPUModel().operating_point(rs).throughput_gchps == pytest.approx(
            0.21
        )


class TestFPGAModel:
    def test_published_points(self):
        point = FPGAModel().operating_point("Snort")
        assert point.throughput_gchps == 0.15
        assert point.power_w == 1.41

    def test_all_anmlzoo_benchmarks_published(self):
        for name in ["Brill", "ClamAV", "Dotstar", "PowerEN", "Snort"]:
            point = FPGAModel().operating_point(name)
            assert 0.1 < point.throughput_gchps < 0.2
            assert 1.0 < point.power_w < 2.0

    def test_unlisted_benchmark_interpolates(self):
        point = FPGAModel().operating_point("Custom", ruleset())
        assert point.throughput_gchps > 0
        assert point.power_w >= 1.4

    def test_efficiency_ordering(self):
        """ASIC >> FPGA > GPU > CPU in energy efficiency."""
        rs = ruleset(50)
        cpu = CPUModel().operating_point(rs)
        gpu = GPUModel().operating_point(rs)
        fpga = FPGAModel().operating_point("Snort")
        assert (
            fpga.energy_efficiency_gch_per_j
            > gpu.energy_efficiency_gch_per_j
            > cpu.energy_efficiency_gch_per_j
        )
