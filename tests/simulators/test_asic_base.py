"""Unit tests for the shared AP-style cost machinery."""

import pytest

from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.hardware.circuits import TABLE1
from repro.hardware.energy import EnergyLedger
from repro.mapping.mapper import map_ruleset
from repro.simulators.asic_base import (
    ApStyleSimulator,
    _array_mean_activity,
    cama_params,
    rap_nfa_params,
    rap_tile_area,
)


class TestArchParams:
    def test_switch_interpolation(self):
        params = cama_params()
        assert params.switch_pj(0.0) == pytest.approx(1.0)
        assert params.switch_pj(1.0) == pytest.approx(14.0)
        assert params.switch_pj(0.5) == pytest.approx(7.5)

    def test_switch_clamps_out_of_range(self):
        params = cama_params()
        assert params.switch_pj(2.0) == pytest.approx(14.0)
        assert params.switch_pj(-1.0) == pytest.approx(1.0)

    def test_gswitch_interpolation(self):
        params = cama_params()
        assert params.gswitch_pj(0.0) == pytest.approx(2.0)
        assert params.gswitch_pj(1.0) == pytest.approx(55.0)

    def test_rap_tile_area_components(self):
        expected = (
            TABLE1.cam.area_um2
            + TABLE1.sram_128.area_um2
            + TABLE1.local_controller.area_um2
        )
        assert rap_tile_area() == pytest.approx(expected)

    def test_rap_pays_more_control_than_cama(self):
        rap = rap_nfa_params()
        cama = cama_params()
        assert rap.local_ctrl_pj > cama.local_ctrl_pj
        assert rap.tile_area_um2 > cama.tile_area_um2
        assert rap.clock_ghz < cama.clock_ghz  # 2.08 vs 2.14


class TestChargingHelpers:
    def ruleset_and_mapping(self):
        ruleset = compile_ruleset(
            ["abcd", "efgh"], CompilerConfig(forced_mode=CompiledMode.NFA)
        )
        return ruleset, map_ruleset(ruleset)

    def test_charge_array_structure_flags(self):
        ruleset, mapping = self.ruleset_and_mapping()
        sim = ApStyleSimulator(cama_params())
        with_overhead = EnergyLedger()
        sim.charge_array_structure(with_overhead, mapping.arrays[0])
        without = EnergyLedger()
        sim.charge_array_structure(
            without, mapping.arrays[0], include_overhead=False
        )
        assert with_overhead.area_um2 > without.area_um2
        assert "array-overhead" not in without.area_breakdown()

    def test_overhead_units_proportional(self):
        sim = ApStyleSimulator(cama_params())
        small, large = EnergyLedger(), EnergyLedger()
        sim.charge_overhead_units(small, 4)
        sim.charge_overhead_units(large, 8)
        assert large.area_um2 == pytest.approx(2 * small.area_um2)

    def test_mean_activity_bounded(self):
        from repro.simulators.activity import collect_regex_activity

        ruleset, mapping = self.ruleset_and_mapping()
        data = b"abcdefgh" * 50
        activities = {
            r.regex_id: collect_regex_activity(r, data) for r in ruleset
        }
        compiled = {r.regex_id: r for r in ruleset}
        value = _array_mean_activity(mapping.arrays[0], activities, compiled)
        assert 0.0 <= value <= 1.0

    def test_run_rejects_mixed_modes(self):
        mixed = compile_ruleset(["ab{40}c"], CompilerConfig())
        sim = ApStyleSimulator(cama_params())
        with pytest.raises(ValueError):
            sim.run(mixed, b"data")
