"""CAMA / CA / BVAP baseline simulator tests."""

import pytest

from repro.automata.reference import ReferenceMatcher
from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.mapping.mapper import map_ruleset
from repro.regex.parser import parse
from repro.simulators.bvap import BVAPSimulator, bvap_demand
from repro.simulators.ca import CASimulator, ca_hardware_config
from repro.simulators.cama import CAMASimulator
from repro.simulators.rap import RAPSimulator

PATTERNS = ["ab{40}c", "a[bc]de", "xy*z"]
DATA = (b"filler text " * 10 + b"a" + b"b" * 40 + b"c" + b"xyz abde") * 5


def nfa_ruleset(patterns=PATTERNS, hw=None):
    cfg = CompilerConfig(forced_mode=CompiledMode.NFA)
    if hw is not None:
        cfg = CompilerConfig(forced_mode=CompiledMode.NFA, hw=hw)
    ruleset = compile_ruleset(patterns, cfg)
    assert not ruleset.rejected
    return ruleset


class TestCAMA:
    def test_matches_reference(self):
        result = CAMASimulator().run(nfa_ruleset(), DATA)
        for k, pattern in enumerate(PATTERNS):
            expected = ReferenceMatcher(parse(pattern)).find_matches(DATA)
            assert result.matches[k] == expected

    def test_clock(self):
        result = CAMASimulator().run(nfa_ruleset(), DATA)
        assert result.throughput_gchps == pytest.approx(2.14)

    def test_rejects_non_nfa_ruleset(self):
        mixed = compile_ruleset(["ab{40}c"], CompilerConfig())
        with pytest.raises(ValueError):
            CAMASimulator().run(mixed, DATA)

    def test_cheaper_than_rap_nfa_mode(self):
        """RAP pays its reconfiguration controller on plain NFAs."""
        ruleset = nfa_ruleset()
        mapping = map_ruleset(ruleset)
        cama = CAMASimulator().run(ruleset, DATA, mapping=mapping)
        rap = RAPSimulator().run(ruleset, DATA, mapping=mapping)
        assert cama.energy_uj < rap.energy_uj
        assert cama.area_mm2 < rap.area_mm2


class TestCA:
    def run_ca(self, patterns=PATTERNS, data=DATA):
        hw = ca_hardware_config()
        ruleset = nfa_ruleset(patterns, hw=hw)
        mapping = map_ruleset(ruleset, hw)
        return CASimulator().run(ruleset, data, mapping=mapping)

    def test_matches_reference(self):
        result = self.run_ca()
        for k, pattern in enumerate(PATTERNS):
            expected = ReferenceMatcher(parse(pattern)).find_matches(DATA)
            assert result.matches[k] == expected

    def test_clock(self):
        assert self.run_ca().throughput_gchps == pytest.approx(1.82)

    def test_biggest_area_lowest_nfa_energy(self):
        """CA: cheapest matching energy, largest footprint (Tables 2-3).

        CA's per-state advantage comes from 256-state tiles needing half
        as many structures, so the comparison needs a workload spanning
        several tiles.
        """
        patterns = [f"{c}x{{60}}y{{60}}z" for c in "abcdefgh"]  # ~980 states
        data = b"scan me please " * 30
        cama = CAMASimulator().run(nfa_ruleset(patterns), data)
        ca = self.run_ca(patterns, data)
        assert ca.area_mm2 > cama.area_mm2
        assert ca.energy_uj < cama.energy_uj


class TestBVAP:
    def nbva_ruleset(self, patterns=("ab{40}c", "xy{90}z")):
        ruleset = compile_ruleset(list(patterns), CompilerConfig(bv_depth=8))
        assert all(r.mode is CompiledMode.NBVA for r in ruleset)
        return ruleset

    def test_matches_reference(self):
        ruleset = self.nbva_ruleset()
        result = BVAPSimulator().run(ruleset, DATA)
        for regex in ruleset:
            expected = ReferenceMatcher(parse(regex.pattern)).find_matches(DATA)
            assert result.matches[regex.regex_id] == expected

    def test_demand_accounting(self):
        ruleset = self.nbva_ruleset(["ab{300}c"])
        demand = bvap_demand(ruleset.regexes[0], RAPSimulator().hw)
        assert demand.bv_slots == 2  # 300 bits over 256-bit slots
        assert demand.cc_columns >= 2

    def test_fixed_slots_waste_area_on_small_bvs(self):
        """Many small BVs strand BVM capacity vs RAP's dynamic columns."""
        patterns = [f"{c}x{{40}}y" for c in "abcdefgh"]
        ruleset = compile_ruleset(patterns, CompilerConfig(bv_depth=8))
        data = b"irrelevant filler " * 50
        bvap = BVAPSimulator().run(ruleset, data)
        rap = RAPSimulator().run(ruleset, data)
        assert bvap.area_mm2 > rap.area_mm2

    def test_rejects_lnfa(self):
        ruleset = compile_ruleset(["abcd"], CompilerConfig())
        with pytest.raises(ValueError):
            BVAPSimulator().run(ruleset, DATA)

    def test_accepts_plain_nfa_regexes(self):
        """NFA regexes run on the CAMA portion with BVMs idle."""
        ruleset = compile_ruleset(
            ["ab*c"], CompilerConfig(forced_mode=CompiledMode.NFA)
        )
        result = BVAPSimulator().run(ruleset, b"abbbc" * 10)
        expected = ReferenceMatcher(parse("ab*c")).find_matches(b"abbbc" * 10)
        assert result.matches[0] == expected

    def test_stalls_with_fixed_latency(self):
        data = (b"a" + b"b" * 40 + b"c") * 30
        ruleset = self.nbva_ruleset(["ab{40}c"])
        result = BVAPSimulator().run(ruleset, data)
        assert result.stall_cycles > 0
        assert result.throughput_gchps < 2.0


class TestCrossArchitectureAgreement:
    def test_all_asics_report_identical_matches(self):
        patterns = ["ab{30}c", "q[rs]tu"]
        data = (b"junk " * 8 + b"a" + b"b" * 30 + b"c qrtu qstu") * 4
        rap_rs = compile_ruleset(patterns, CompilerConfig(bv_depth=4))
        nfa_rs = nfa_ruleset(patterns)
        ca_hw = ca_hardware_config()
        ca_rs = nfa_ruleset(patterns, hw=ca_hw)

        # BVAP has no LNFA mode: its ruleset compiles the linear pattern
        # as a plain NFA alongside the counted one.
        from repro.compiler import compile_pattern
        from repro.compiler.program import CompiledRuleset

        bvap_rs = CompiledRuleset(
            regexes=(
                compile_pattern(patterns[0], 0, CompilerConfig(bv_depth=4)),
                compile_pattern(
                    patterns[1],
                    1,
                    CompilerConfig(forced_mode=CompiledMode.NFA),
                ),
            )
        )

        rap = RAPSimulator().run(rap_rs, data)
        cama = CAMASimulator().run(nfa_rs, data)
        ca = CASimulator().run(ca_rs, data, mapping=map_ruleset(ca_rs, ca_hw))
        bvap = BVAPSimulator().run(bvap_rs, data)
        assert rap.matches == cama.matches == ca.matches == bvap.matches
