"""Tests for the Section 5.5 workload-sharing rule."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulators.result import ArrayReport
from repro.simulators.sharing import plan_workload_sharing


def report(mode="nbva", throughput=1.0, tiles=4):
    cycles = 1000
    return ArrayReport(
        mode=mode,
        tiles=tiles,
        cycles=cycles,
        stalls=0,
        throughput_gchps=throughput,
    )


class TestPlan:
    def test_fast_arrays_untouched(self):
        plan = plan_workload_sharing([report(throughput=2.08)])
        assert plan.replicas == (1,)
        assert plan.extra_tiles == 0
        assert plan.system_throughput == pytest.approx(2.08)

    def test_slow_nbva_array_duplicated(self):
        plan = plan_workload_sharing([report(throughput=1.2, tiles=5)])
        assert plan.replicas == (2,)
        assert plan.extra_tiles == 5
        assert plan.system_throughput == pytest.approx(2.08)  # clock cap

    def test_very_slow_array_replicates_more(self):
        plan = plan_workload_sharing([report(throughput=0.6)])
        assert plan.replicas == (4,)
        assert plan.system_throughput == pytest.approx(2.08)

    def test_replica_cap(self):
        plan = plan_workload_sharing([report(throughput=0.1)])
        assert plan.replicas == (4,)
        assert plan.system_throughput == pytest.approx(0.4)

    def test_nfa_and_lnfa_arrays_never_shared(self):
        plan = plan_workload_sharing(
            [report(mode="nfa", throughput=1.0), report(mode="lnfa", throughput=1.0)]
        )
        assert plan.replicas == (1, 1)
        assert plan.extra_tiles == 0

    def test_system_is_bottleneck(self):
        plan = plan_workload_sharing(
            [report(throughput=2.08), report(throughput=0.3)]
        )
        assert plan.system_throughput == pytest.approx(1.2)

    def test_zero_throughput_array(self):
        plan = plan_workload_sharing([report(throughput=0.0)])
        assert plan.system_throughput == 0.0
        assert plan.replicas == (1,)

    def test_empty_reports(self):
        plan = plan_workload_sharing([])
        assert plan.system_throughput == 0.0
        assert plan.total_copies == 0

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            plan_workload_sharing([report()], floor_gchps=0)

    def test_shared_array_count(self):
        plan = plan_workload_sharing(
            [report(throughput=1.0), report(throughput=2.08)]
        )
        assert plan.shared_arrays == 1
        assert plan.total_copies == 3


class TestAgainstBankModel:
    def test_plan_prediction_matches_cycle_level_split(self):
        """Splitting the stall schedule across k replicas, replayed
        through the cycle-level bank simulator, sustains (about) the
        throughput the analytical plan predicts."""
        from repro.simulators.bank import ArrayStream, BankSimulator

        symbols = 4000
        depth = 16
        stall_indices = list(range(0, symbols, 25))  # 4% activation
        base_rate = 1 / (1 + len(stall_indices) * depth / symbols)
        plan = plan_workload_sharing(
            [
                ArrayReport(
                    mode="nbva",
                    tiles=4,
                    cycles=int(symbols / base_rate),
                    stalls=len(stall_indices) * depth,
                    throughput_gchps=base_rate * 2.08,
                )
            ]
        )
        k = plan.replicas[0]
        assert k >= 2
        # "share the workload": the input stream is striped into k
        # contiguous chunks, one replica array per chunk, all running in
        # parallel; aggregate throughput = symbols / slowest replica.
        sim = BankSimulator()
        chunk = symbols // k
        replica_cycles = []
        for i in range(k):
            lo, hi = i * chunk, (i + 1) * chunk
            stalls = {
                idx - lo: depth
                for idx in stall_indices
                if lo <= idx < hi
            }
            result = sim.run(
                [ArrayStream(f"rep{i}", stall_after=stalls)], chunk
            )
            replica_cycles.append(result.total_cycles)
        aggregate = symbols / max(replica_cycles) * 2.08
        # the plan caps at the clock: the bank's input path delivers the
        # stream once, so aggregate rate beyond one array's clock cannot
        # be consumed
        measured = min(aggregate, 2.08)
        predicted = plan.array_throughputs[0]
        assert aggregate >= predicted - 1e-9
        assert measured == pytest.approx(predicted, rel=0.15)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["nbva", "nfa", "lnfa"]),
            st.floats(0.05, 2.08),
            st.integers(1, 16),
        ),
        max_size=8,
    )
)
def test_sharing_invariants(specs):
    reports = [report(mode=m, throughput=t, tiles=k) for m, t, k in specs]
    plan = plan_workload_sharing(reports)
    assert len(plan.replicas) == len(reports)
    for r, k, after in zip(reports, plan.replicas, plan.array_throughputs):
        assert 1 <= k <= 4
        assert after <= 2.08 + 1e-9
        assert after >= r.throughput_gchps - 1e-9  # sharing never hurts
        if r.mode != "nbva":
            assert k == 1
    assert plan.extra_tiles >= 0
