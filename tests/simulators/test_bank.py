"""Bank-level I/O streaming simulation tests (Section 3.3)."""

import pytest

from repro.simulators.bank import ArrayStream, BankSimulator


def stream(name="a0", stalls=None, reports=()):
    return ArrayStream(
        name=name,
        stall_after=dict(stalls or {}),
        reports_at=frozenset(reports),
    )


class TestBasicStreaming:
    def test_unstalled_array_approaches_one_symbol_per_cycle(self):
        result = BankSimulator().run([stream()], 2000)
        assert result.effective_throughput > 0.95
        assert result.output_interrupts == 0
        assert result.dma_backpressure_cycles == 0

    def test_all_symbols_consumed(self):
        result = BankSimulator().run([stream()], 500)
        assert result.input_symbols == 500
        assert result.array_finish_cycles["a0"] > 0

    def test_zero_arrays_rejected(self):
        with pytest.raises(ValueError):
            BankSimulator().run([], 10)

    def test_too_many_arrays_rejected(self):
        streams = [stream(f"a{i}") for i in range(5)]
        with pytest.raises(ValueError):
            BankSimulator().run(streams, 10)

    def test_four_arrays_share_the_bank(self):
        streams = [stream(f"a{i}") for i in range(4)]
        result = BankSimulator().run(streams, 1000)
        assert result.effective_throughput > 0.9


class TestStalls:
    def test_stalls_reduce_throughput(self):
        stalls = {i: 8 for i in range(0, 1000, 10)}  # 10% activation, depth 8
        result = BankSimulator().run([stream(stalls=stalls)], 1000)
        # steady state: 1 + 0.1*8 cycles per symbol
        assert 0.5 < result.effective_throughput < 0.62

    def test_fifos_decouple_sibling_arrays(self):
        """A stalling array slows its siblings only *partially*: they run
        ahead until the shared sliding window tethers them (the paper's
        "partially hide the latency across arrays")."""
        stalls = {i: 16 for i in range(0, 600, 20)}  # 480 stall cycles
        slow = stream("slow", stalls=stalls)
        fast = stream("fast")
        result = BankSimulator().run([slow, fast], 600)
        assert result.array_finish_cycles["fast"] < result.array_finish_cycles["slow"]
        # the window lets the fast array run a full buffer ahead, hiding
        # part (not all) of the sibling's stall time
        hidden = 480 - result.array_starved_cycles["fast"]
        assert 0 < result.array_starved_cycles["fast"] < 480
        assert hidden > 100

    def test_burst_stall_absorbed_by_window(self):
        """One isolated deep stall barely moves aggregate throughput."""
        result = BankSimulator().run([stream(stalls={100: 64})], 2000)
        assert result.effective_throughput > 0.9


class TestOutputPath:
    def test_reports_delivered(self):
        reports = set(range(0, 500, 25))
        result = BankSimulator().run([stream(reports=reports)], 500)
        assert result.reports_delivered == len(reports)

    def test_interrupts_on_match_storms(self):
        """Match rates far above the 10% design point trip interrupts and
        cost throughput — the paper's output-path sizing assumption."""
        calm = BankSimulator().run(
            [stream(reports=set(range(0, 2000, 50)))], 2000
        )
        storm = BankSimulator().run(
            [stream(reports=set(range(0, 2000, 2)))], 2000
        )
        assert storm.output_interrupts > calm.output_interrupts
        assert storm.effective_throughput < calm.effective_throughput
        assert storm.interrupt_stall_cycles > 0
        assert storm.reports_delivered == 1000

    def test_report_backpressure_never_drops_reports(self):
        reports = set(range(300))  # every symbol reports
        result = BankSimulator().run([stream(reports=reports)], 300)
        assert result.reports_delivered == 300


class TestDmaPressure:
    def test_shared_window_needs_only_one_symbol_per_cycle(self):
        """All arrays read the same broadcast stream, so a 1-symbol/cycle
        DMA sustains four arrays at full rate."""
        sim = BankSimulator(dma_symbols_per_cycle=1)
        streams = [stream(f"a{i}") for i in range(4)]
        result = sim.run(streams, 800)
        assert result.effective_throughput > 0.95

    def test_stalled_array_backs_the_window_up_to_dma(self):
        """A persistently slow array pins the window tail; once the
        window fills, DMA sees back-pressure."""
        stalls = {i: 16 for i in range(0, 1000, 4)}
        slow = stream("slow", stalls=stalls)
        fast = stream("fast")
        result = BankSimulator().run([slow, fast], 1000)
        assert result.dma_backpressure_cycles > 0
        assert result.mean_input_occupancy > 16


class TestConservation:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(50, 400),
        st.lists(
            st.tuples(st.integers(0, 399), st.integers(1, 12)), max_size=12
        ),
        st.sets(st.integers(0, 399), max_size=30),
        st.integers(1, 3),
    )
    def test_everything_is_consumed_and_delivered(
        self, symbols, stall_specs, reports, sibling_count
    ):
        """Whatever the schedule, the bank consumes every symbol on every
        array and delivers every report exactly once."""
        stalls = {
            idx: depth for idx, depth in stall_specs if idx < symbols
        }
        reports_in_range = frozenset(r for r in reports if r < symbols)
        streams = [
            ArrayStream("main", stall_after=stalls, reports_at=reports_in_range)
        ] + [ArrayStream(f"s{i}") for i in range(sibling_count - 1)]
        result = BankSimulator().run(streams, symbols)
        assert result.reports_delivered == len(reports_in_range)
        assert result.total_cycles >= symbols
        for name, finish in result.array_finish_cycles.items():
            assert finish > 0, name
        # lower bound: the stalled array needs at least its stall budget
        assert result.total_cycles >= symbols  # sanity floor


class TestStreamsFromActivities:
    def test_builder(self):
        from repro.simulators.activity import RegexActivity
        from repro.compiler import CompiledMode
        from repro.simulators.bank import streams_from_activities

        activity = RegexActivity(
            regex_id=0,
            mode=CompiledMode.NBVA,
            cycles=100,
            matches=[5, 50],
            bv_cycle_indices=[5, 6, 7],
        )
        (built,) = streams_from_activities(
            [("array0", [activity])], {"array0": 8}
        )
        assert built.stall_after == {5: 8, 6: 8, 7: 8}
        assert built.reports_at == frozenset({5, 50})
