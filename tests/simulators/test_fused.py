"""Differential suite: the fused backend is bit-identical to the others.

Every assertion here compares whole result objects — matches, cycle
counts, per-tile wake-ups, the energy ledger — not summaries, so any
divergence between the fused lockstep pass and the per-unit python /
numpy paths fails loudly.  Segmented durable scans round-trip their
checkpoints through JSON mid-stream, mirroring a SIGKILL-resume.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.compiler import CompiledMode, compile_ruleset
from repro.core import available_backends, use_backend
from repro.engine.checkpoint import DurableScan
from repro.hardware.config import DEFAULT_CONFIG, TileMode
from repro.simulators.activity import BinActivityCollector
from repro.simulators.fused import FusedBinFeeder, FusedRun
from repro.simulators.rap import RAPSimulator

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="NumPy backend not available",
)

# Mixed-mode pool: literals and alternations land in LNFA bins, counted
# repetitions in NBVA, the rest in NFA — subsets exercise every engine.
PATTERN_POOL = [
    "abc",
    "a.c",
    "end$",
    "^start",
    "hello|world",
    "ab{10,20}c",
    "xy*z",
    "[0-9]{3}x",
    "w[xy]+z",
    "cat",
]

TOKENS = [
    b"abc",
    b"axc",
    b"hello",
    b"world",
    b"start",
    b"end",
    b"xyyyz",
    b"xz",
    b"123x",
    b"wxyxz",
    b"cat",
    b"a" + b"b" * 12 + b"c",
    b"qqqq",
    b" ",
]


def pattern_sets():
    return st.lists(
        st.sampled_from(PATTERN_POOL), min_size=1, max_size=6, unique=True
    )


def token_streams(max_tokens: int = 24):
    return st.lists(
        st.sampled_from(TOKENS), min_size=0, max_size=max_tokens
    ).map(b"".join)


def cut_points(count: int = 3):
    return st.lists(st.integers(0, 400), min_size=0, max_size=count)


def segments_of(data: bytes, cuts: list[int]) -> list[bytes]:
    bounds = sorted({min(c, len(data)) for c in cuts})
    out, prev = [], 0
    for b in bounds:
        out.append(data[prev:b])
        prev = b
    out.append(data[prev:])
    return out


class TestBackendDifferential:
    @settings(max_examples=25, deadline=None)
    @given(pattern_sets(), token_streams())
    def test_run_bit_identical_across_backends(self, patterns, data):
        ruleset = compile_ruleset(patterns)
        sim = RAPSimulator(DEFAULT_CONFIG)
        with use_backend("python"):
            reference = sim.run(ruleset, data)
        for backend in ("numpy", "fused"):
            with use_backend(backend):
                assert sim.run(ruleset, data) == reference, backend

    @settings(max_examples=15, deadline=None)
    @given(pattern_sets(), token_streams())
    def test_fused_activity_collection_identical(self, patterns, data):
        ruleset = compile_ruleset(patterns)
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        with use_backend("python"):
            expected = sim.collect_activities(ruleset, data, mapping)
        got = FusedRun(ruleset, mapping, DEFAULT_CONFIG).collect(data)
        assert got == expected

    def test_small_bins_shard_the_lane_machine(self):
        # A tiny bin_size forces many narrow bins; the packed lane
        # machine must still agree with the python oracle.
        patterns = ["abc", "cat", "hello|world", "a.c"]
        ruleset = compile_ruleset(patterns)
        data = b"".join(random.Random(11).choices(TOKENS, k=60))
        sim = RAPSimulator(DEFAULT_CONFIG)
        with use_backend("python"):
            reference = sim.run(ruleset, data, bin_size=2)
        with use_backend("fused"):
            assert sim.run(ruleset, data, bin_size=2) == reference


class TestFeederDifferential:
    def _collectors(self, mapping):
        return [
            BinActivityCollector(bin_obj, DEFAULT_CONFIG)
            for array in mapping.arrays
            if array.mode is TileMode.LNFA
            for bin_obj in array.bins
        ]

    @settings(max_examples=20, deadline=None)
    @given(token_streams(), cut_points())
    def test_feeder_equals_per_collector_feed(self, data, cuts):
        ruleset = compile_ruleset(
            ["abc", "cat", "hello|world", "end$", "^start"]
        )
        assert any(r.mode is CompiledMode.LNFA for r in ruleset)
        mapping = RAPSimulator(DEFAULT_CONFIG).build_mapping(ruleset)
        fused_side = self._collectors(mapping)
        plain_side = self._collectors(mapping)
        assert fused_side

        feeder = FusedBinFeeder(fused_side)
        pieces = segments_of(data, cuts)
        for index, piece in enumerate(pieces):
            at_end = index == len(pieces) - 1
            feeder.feed(piece, at_end=at_end)
            for collector in plain_side:
                collector.feed(piece, at_end=at_end)

        for fused_c, plain_c in zip(fused_side, plain_side):
            assert fused_c.activity() == plain_c.activity()
            assert fused_c.state == plain_c.state

    def test_feeder_rejects_skewed_offsets(self):
        ruleset = compile_ruleset(["abc", "cat"])
        mapping = RAPSimulator(DEFAULT_CONFIG).build_mapping(
            ruleset, bin_size=1
        )
        collectors = self._collectors(mapping)
        assert len(collectors) >= 2
        collectors[0].feed(b"ab", at_end=False)
        with pytest.raises(ValueError, match="offset"):
            FusedBinFeeder(collectors).feed(b"cd", at_end=False)


class TestDurableFused:
    @settings(max_examples=10, deadline=None)
    @given(token_streams(max_tokens=40), cut_points(), st.integers(0, 3))
    def test_segmented_resume_roundtrip(self, data, cuts, resume_at):
        ruleset = compile_ruleset(PATTERN_POOL)
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        with use_backend("python"):
            whole = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
            whole.feed(data, at_end=True)
            reference = whole.finish()

        pieces = segments_of(data, cuts)
        with use_backend("fused"):
            scan = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
            offset = 0
            for index, piece in enumerate(pieces):
                if index == min(resume_at, len(pieces) - 1):
                    # JSON round-trip, then resume in a fresh scan: the
                    # path a SIGKILL-recovery takes.
                    doc = json.loads(json.dumps(scan.snapshot()))
                    scan = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
                    scan.restore(doc, data[:offset])
                # at_end belongs to the last piece carrying real bytes:
                # an empty feed is a no-op and cannot deliver it.
                at_end = not any(pieces[index + 1 :])
                scan.feed(piece, at_end=at_end)
                offset += len(piece)
            assert scan.finish() == reference

    def test_shedding_falls_back_to_per_bin_path(self):
        ruleset = compile_ruleset(PATTERN_POOL)
        data = b"".join(random.Random(7).choices(TOKENS, k=80))
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        cut = len(data) // 2

        def degraded(backend):
            with use_backend(backend):
                scan = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
                scan.feed(data[:cut], at_end=False)
                shed = scan.shed(0.5, "test pressure")
                scan.feed(data[cut:], at_end=True)
                return shed, scan.finish()

        shed_py, result_py = degraded("python")
        shed_fused, result_fused = degraded("fused")
        assert shed_fused == shed_py
        assert result_fused == result_py
