"""RAP simulator tests: correctness, accounting, stalls, power gating."""

import pytest

from repro.automata.reference import ReferenceMatcher
from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.regex.parser import parse
from repro.simulators.rap import RAPSimulator

PATTERNS = ["ab{40}c", "a[bc]de", "xy*z", "p(?:q.*|r)s"]
DATA = (b"ab" * 30 + b"a" + b"b" * 40 + b"c" + b"xyyz" + b"pqs" + b"a[bc]de") * 3


def run(patterns=PATTERNS, data=DATA, depth=4, bin_size=None, **cfg):
    config = CompilerConfig(bv_depth=depth, **cfg)
    ruleset = compile_ruleset(patterns, config)
    assert not ruleset.rejected
    result = RAPSimulator().run(ruleset, data, bin_size=bin_size)
    return ruleset, result


class TestCorrectness:
    def test_matches_agree_with_reference(self):
        ruleset, result = run()
        for regex in ruleset:
            expected = ReferenceMatcher(parse(regex.pattern)).find_matches(DATA)
            assert result.matches[regex.regex_id] == expected, regex.pattern

    def test_all_modes_present_in_workload(self):
        ruleset, _ = run()
        modes = {r.mode for r in ruleset}
        assert modes == {
            CompiledMode.NBVA,
            CompiledMode.LNFA,
            CompiledMode.NFA,
            CompiledMode.DFA,
        }

    def test_empty_input(self):
        _, result = run(data=b"")
        assert result.match_count == 0
        assert result.energy_uj == 0.0

    def test_lnfa_union_matches_deduplicated(self):
        ruleset, result = run(patterns=["ab(?:c|.)d"], data=b"xabcdx")
        (regex,) = ruleset.regexes
        assert regex.mode is CompiledMode.LNFA
        expected = ReferenceMatcher(parse("ab(?:c|.)d")).find_matches(b"xabcdx")
        assert result.matches[0] == expected


class TestAccounting:
    def test_energy_positive_and_consistent(self):
        _, result = run()
        assert result.energy_uj > 0
        total = sum(result.energy_breakdown_pj.values())
        assert total == pytest.approx(result.energy_uj * 1e6)

    def test_area_positive_and_consistent(self):
        _, result = run()
        assert result.area_mm2 > 0
        total = sum(result.area_breakdown_um2.values())
        assert total == pytest.approx(result.area_mm2 * 1e6)

    def test_breakdown_components(self):
        _, result = run()
        assert "state-matching" in result.energy_breakdown_pj
        assert "bv-processing" in result.energy_breakdown_pj
        assert "tile" in result.area_breakdown_um2

    def test_power_and_efficiency_derived(self):
        _, result = run()
        assert result.power_w > 0
        assert result.energy_efficiency > 0
        assert result.compute_density > 0

    def test_energy_scales_with_input_length(self):
        _, short = run(data=DATA[: len(DATA) // 2])
        _, full = run()
        assert full.energy_uj > short.energy_uj


class TestThroughput:
    def test_nfa_only_runs_at_clock(self):
        _, result = run(patterns=["xy*z", "pq*r"])
        assert result.throughput_gchps == pytest.approx(2.08, rel=1e-6)
        assert result.stall_cycles == 0

    def test_bv_phases_stall(self):
        # Dense counting traffic: the counted symbol dominates the input.
        data = b"a" * 2000
        _, result = run(patterns=["ba{64}c", "a{100}x"], data=data, depth=8)
        assert result.stall_cycles > 0
        assert result.throughput_gchps < 2.08

    def test_deeper_bv_stalls_more(self):
        data = (b"b" + b"a" * 64 + b"c") * 20
        _, shallow = run(patterns=["ba{64}c"], data=data, depth=4)
        _, deep = run(patterns=["ba{64}c"], data=data, depth=32)
        assert deep.throughput_gchps < shallow.throughput_gchps

    def test_idle_counters_do_not_stall(self):
        # Input never activates the counted branch.
        _, result = run(patterns=["zq{50}v"], data=b"abcd" * 500)
        assert result.stall_cycles == 0


class TestModeEfficiency:
    """Mini Section 5.4: the mode-level claims at small scale."""

    def test_nbva_mode_beats_forced_nfa(self):
        # Realistic traffic: the counted suffix fires rarely (the paper's
        # "complex prefix leads to a low activation rate" observation).
        patterns = ["ab{120}c", "xy{90}z"]
        data = (b"the quick brown fox " * 20 + b"a" + b"b" * 120 + b"c") * 3
        nbva_rs = compile_ruleset(patterns, CompilerConfig(bv_depth=8))
        nfa_rs = compile_ruleset(
            patterns, CompilerConfig(forced_mode=CompiledMode.NFA)
        )
        sim = RAPSimulator()
        nbva = sim.run(nbva_rs, data)
        nfa = sim.run(nfa_rs, data)
        assert nbva.matches == nfa.matches
        assert nbva.energy_uj < nfa.energy_uj
        assert nbva.area_mm2 < nfa.area_mm2

    def test_lnfa_mode_beats_forced_nfa_on_energy(self):
        patterns = ["abcdefgh", "ijklmnop", "qrstuvwx", "wxyzabcd"]
        data = b"the quick brown fox jumps over the lazy dog " * 40
        lnfa_rs = compile_ruleset(patterns, CompilerConfig())
        nfa_rs = compile_ruleset(
            patterns, CompilerConfig(forced_mode=CompiledMode.NFA)
        )
        assert all(r.mode is CompiledMode.LNFA for r in lnfa_rs)
        sim = RAPSimulator()
        lnfa = sim.run(lnfa_rs, data, bin_size=4)
        nfa = sim.run(nfa_rs, data)
        assert lnfa.matches == nfa.matches
        assert lnfa.energy_uj < nfa.energy_uj

    def test_power_gating_cuts_lnfa_leakage(self):
        """Idle LNFA tiles leak at the retention floor, not full power."""
        pattern = "abcdefgh" * 20  # 160 states -> spans two tiles
        quiet = b"z" * 1500  # prefix never matches: downstream gated
        busy = b"abcdefgh" * 188  # constantly live everywhere
        ruleset = compile_ruleset([pattern], CompilerConfig())
        sim = RAPSimulator()
        leak_quiet = sim.run(ruleset, quiet, bin_size=1).metrics.leakage_w
        leak_busy = sim.run(ruleset, busy[:1500], bin_size=1).metrics.leakage_w
        assert leak_quiet < leak_busy

    def test_binning_saves_energy(self):
        patterns = [c * 8 for c in "abcdefgh"]
        data = b"zzzzzzzz" * 300  # no activity beyond initial states
        ruleset = compile_ruleset(patterns, CompilerConfig())
        sim = RAPSimulator()
        unbinned = sim.run(ruleset, data, bin_size=1)
        binned = sim.run(ruleset, data, bin_size=8)
        assert binned.matches == unbinned.matches
        assert binned.energy_uj < unbinned.energy_uj
