"""CLI tests: compile / scan / workload / experiment plumbing."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture()
def pattern_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("ab{40}c\na[bc]de\n# a comment\n\nxy*z\n")
    return path


@pytest.fixture()
def input_file(tmp_path):
    path = tmp_path / "input.bin"
    path.write_bytes(b"noise " * 5 + b"a" + b"b" * 40 + b"c abde xyz")
    return path


class TestCompile:
    def test_compile_writes_ruleset(
        self, pattern_file, tmp_path, capsys, monkeypatch
    ):
        # The mode counts assert the *auto* selection; a RAP_MODE
        # differential leg would legitimately shift them.
        monkeypatch.delenv("RAP_MODE", raising=False)
        out = tmp_path / "rules.json"
        code = main(["compile", str(pattern_file), "-o", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["format"] == "rap-repro-ruleset"
        assert len(doc["regexes"]) == 3
        stdout = capsys.readouterr().out
        assert "compiled 3 regexes" in stdout
        assert "0 NFA, 1 DFA, 1 NBVA, 1 LNFA" in stdout

    def test_rejections_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("a(\n")
        out = tmp_path / "out.json"
        code = main(["compile", str(bad), "-o", str(out)])
        assert code == 1
        assert "rejected" in capsys.readouterr().err

    def test_forced_mode(self, pattern_file, tmp_path):
        out = tmp_path / "nfa.json"
        code = main(
            [
                "compile",
                str(pattern_file),
                "-o",
                str(out),
                "--force-mode",
                "NFA",
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert all(r["mode"] == "NFA" for r in doc["regexes"])


class TestScan:
    def test_scan_patterns(self, pattern_file, input_file, capsys):
        code = main(["scan", "--patterns", str(pattern_file), str(input_file)])
        assert code == 0
        captured = capsys.readouterr()
        assert "matches over" in captured.err
        lines = [line for line in captured.out.splitlines() if line]
        assert lines, "the planted payloads must match"
        end, regex_id, pattern = lines[0].split("\t")
        assert int(end) >= 0 and pattern

    def test_scan_compiled_ruleset(self, pattern_file, input_file, tmp_path, capsys):
        out = tmp_path / "rules.json"
        main(["compile", str(pattern_file), "-o", str(out)])
        code = main(
            ["scan", "--ruleset", str(out), str(input_file), "--metrics"]
        )
        assert code == 0
        assert "RAP:" in capsys.readouterr().err

    def test_scan_results_identical_between_paths(
        self, pattern_file, input_file, tmp_path, capsys
    ):
        main(["scan", "--patterns", str(pattern_file), str(input_file)])
        direct = capsys.readouterr().out
        out = tmp_path / "rules.json"
        main(["compile", str(pattern_file), "-o", str(out)])
        capsys.readouterr()
        main(["scan", "--ruleset", str(out), str(input_file)])
        via_file = capsys.readouterr().out
        assert direct == via_file


class TestScanFaultPolicies:
    @pytest.fixture()
    def mixed_rules(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text("GATTACA\na(\n")
        return path

    @pytest.fixture()
    def stream(self, tmp_path):
        path = tmp_path / "in.bin"
        path.write_bytes(b"xxGATTACAyy")
        return path

    def test_default_fail_is_structured_exit_2(
        self, mixed_rules, stream, capsys
    ):
        code = main(
            ["scan", "--patterns", str(mixed_rules), str(stream), "--no-cache"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "pattern: 'a('" in err
        assert "phase: 'compile'" in err

    def test_quarantine_is_partial_exit_4(self, mixed_rules, stream, capsys):
        code = main(
            [
                "scan",
                "--patterns",
                str(mixed_rules),
                str(stream),
                "--no-cache",
                "--on-error",
                "quarantine",
            ]
        )
        assert code == 4
        captured = capsys.readouterr()
        # The healthy pattern still matched and printed.
        assert "GATTACA" in captured.out
        assert "quarantined: 'a('" in captured.err
        assert "partial: 1 pattern(s) quarantined" in captured.err

    def test_all_quarantined_exit_4_without_scanning(
        self, tmp_path, stream, capsys
    ):
        rules = tmp_path / "allbad.txt"
        rules.write_text("a(\n")
        code = main(
            [
                "scan",
                "--patterns",
                str(rules),
                str(stream),
                "--no-cache",
                "--on-error",
                "quarantine",
            ]
        )
        assert code == 4
        assert "all patterns quarantined" in capsys.readouterr().err

    def test_skip_drops_offenders_cleanly(self, mixed_rules, stream, capsys):
        code = main(
            [
                "scan",
                "--patterns",
                str(mixed_rules),
                str(stream),
                "--no-cache",
                "--on-error",
                "skip",
            ]
        )
        assert code == 0
        assert "GATTACA" in capsys.readouterr().out

    def test_supervision_flags_parse_and_run(self, mixed_rules, stream):
        args = build_parser().parse_args(
            [
                "scan",
                "--patterns",
                str(mixed_rules),
                str(stream),
                "--timeout",
                "2.5",
                "--retries",
                "5",
            ]
        )
        assert args.timeout == 2.5
        assert args.retries == 5
        args = build_parser().parse_args(
            ["experiment", "fig1", "--timeout", "30", "--retries", "1"]
        )
        assert args.timeout == 30.0
        assert args.retries == 1


class TestWorkload:
    def test_known_benchmark(self, capsys):
        code = main(["workload", "Snort", "--size", "6"])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 6
        assert all("\t" in line for line in lines)

    def test_anmlzoo_benchmark(self, capsys):
        code = main(["workload", "Dotstar", "--size", "4"])
        assert code == 0
        assert len(capsys.readouterr().out.splitlines()) == 4

    def test_unknown_benchmark(self, capsys):
        code = main(["workload", "NotAThing"])
        assert code == 2
        assert "known:" in capsys.readouterr().err


class TestInspect:
    def test_inspect_summarizes(self, pattern_file, tmp_path, capsys):
        out = tmp_path / "rules.json"
        main(["compile", str(pattern_file), "-o", str(out)])
        capsys.readouterr()
        code = main(["inspect", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "regexes:" in text
        assert "hardware states:" in text
        assert "utilization:" in text


class TestCustomHardware:
    def test_compile_with_hw_file(self, pattern_file, tmp_path, capsys):
        import json as _json

        from repro.hardware.config import HardwareConfig

        hw = HardwareConfig(
            cam_cols=64,
            local_switch_dim=64,
            tiles_per_array=32,
            global_switch_dim=256,
        )
        hw_path = tmp_path / "hw.json"
        hw_path.write_text(_json.dumps(hw.to_json()))
        out = tmp_path / "rules.json"
        code = main(
            ["compile", str(pattern_file), "-o", str(out), "--hw", str(hw_path)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        # the custom 64-column tiles constrain the tile plans
        for regex in doc["regexes"]:
            for request in regex["tile_requests"]:
                total = (
                    request["cc_columns"]
                    + request["bv_columns"]
                    + request["set1_columns"]
                )
                assert total <= 64

    def test_hw_round_trip(self):
        from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig

        assert HardwareConfig.from_json(DEFAULT_CONFIG.to_json()) == DEFAULT_CONFIG

    def test_hw_unknown_key_rejected(self):
        from repro.hardware.config import HardwareConfig

        with pytest.raises(ValueError):
            HardwareConfig.from_json({"frobnicator": 7})


class TestExperiment:
    def test_experiment_names_cover_all_artifacts(self):
        assert sorted(EXPERIMENTS) == [
            "all",
            "fig1",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "table2",
            "table3",
            "table4",
        ]

    def test_fig1_runs_small(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = main(
            ["experiment", "fig1", "--size", "12", "--input-length", "1500"]
        )
        assert code == 0
        assert "Fig. 1" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestServeCLI:
    """Serve/loadgen flag plumbing: structured exit codes, validation."""

    def test_serve_help_documents_flags_and_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["serve", "--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--max-sessions", "--idle-timeout", "--drain-seconds"):
            assert flag in out
        # The epilog spells out the structured exit codes.
        assert "2" in out and "5" in out

    @pytest.mark.parametrize(
        "flags",
        [
            ["--max-sessions", "0"],
            ["--idle-timeout", "0"],
            ["--drain-seconds", "-1"],
            ["--max-rss-mb", "-5"],
            ["--port", "70000"],
        ],
    )
    def test_invalid_config_exits_2_before_binding(
        self, flags, tmp_path, capsys
    ):
        code = main(
            ["serve", "--checkpoint-dir", str(tmp_path / "ck"), *flags]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        # The offending flag is named in the structured context.
        assert flags[0].lstrip("-").replace("-", "_").split("_")[0] in err

    def test_loadgen_rejects_bad_fault_plan_before_connecting(
        self, pattern_file, capsys
    ):
        code = main(
            [
                "loadgen",
                "--port",
                "1",
                "--patterns",
                str(pattern_file),
                "--fault-plan",
                "bogus@0",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
