"""Architecture configuration tests (Section 3.3 derived capacities)."""

import pytest

from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig, TileMode


class TestDerivedCapacities:
    """The capacities Section 3.3 quotes for the default design point."""

    def test_max_regex_states(self):
        assert DEFAULT_CONFIG.max_regex_states == 2048

    def test_max_bv_bits(self):
        assert DEFAULT_CONFIG.max_bv_bits == 4064

    def test_max_nbva_unfolded_states(self):
        assert DEFAULT_CONFIG.max_nbva_unfolded_states == 64528

    def test_global_ports_per_tile(self):
        assert DEFAULT_CONFIG.global_ports_per_tile == 16

    def test_stes_per_array(self):
        assert DEFAULT_CONFIG.stes_per_array == 2048

    def test_clock(self):
        assert DEFAULT_CONFIG.clock_ghz == 2.08
        assert DEFAULT_CONFIG.cycle_ns == pytest.approx(1 / 2.08)


class TestBvColumns:
    def test_exact_fit(self):
        assert DEFAULT_CONFIG.bv_columns(128, 16) == 8

    def test_partial_last_word(self):
        assert DEFAULT_CONFIG.bv_columns(34, 16) == 3

    def test_single_bit(self):
        assert DEFAULT_CONFIG.bv_columns(1, 4) == 1

    def test_unsupported_depth(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.bv_columns(64, 5)

    def test_zero_bits(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.bv_columns(0, 4)


class TestValidation:
    def test_switch_must_match_cam_columns(self):
        with pytest.raises(ValueError):
            HardwareConfig(cam_cols=128, local_switch_dim=256)

    def test_ports_must_divide(self):
        with pytest.raises(ValueError):
            HardwareConfig(global_switch_dim=250)

    def test_tile_modes(self):
        assert {m.value for m in TileMode} == {"nfa", "nbva", "lnfa"}
