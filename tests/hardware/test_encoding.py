"""Character-class encoding model tests."""

import pytest
from hypothesis import given

from repro.hardware.encoding import (
    blocks_touched,
    codes_needed,
    lnfa_cam_eligible,
    onehot_switch_columns,
    single_code,
)
from repro.regex.charclass import DIGITS, CharClass

from tests.regex.test_charclass import byte_sets


class TestCodesNeeded:
    def test_singleton_is_one_code(self):
        assert codes_needed(CharClass.of("a")) == 1

    def test_range_within_block(self):
        # a..z spans bytes 97..122, all within the 96..127 block
        assert codes_needed(CharClass.range("a", "z")) == 1

    def test_digits_one_code(self):
        assert codes_needed(DIGITS) == 1

    def test_any_is_wildcard(self):
        assert codes_needed(CharClass.any()) == 1

    def test_negated_singleton_stored_negatively(self):
        assert codes_needed(~CharClass.of("\\")) == 1

    def test_scattered_class_needs_many(self):
        cc = CharClass.of(0x01, 0x21, 0x41, 0x61, 0x81, 0xA1)
        assert codes_needed(cc) == 6

    def test_two_blocks(self):
        cc = CharClass.of("a") | CharClass.of(0x01)
        assert codes_needed(cc) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            codes_needed(CharClass.empty())


class TestEligibility:
    def test_simple_lnfa_eligible(self):
        labels = [CharClass.of("a"), CharClass.range("0", "9"), CharClass.any()]
        assert lnfa_cam_eligible(labels)

    def test_scattered_class_breaks_eligibility(self):
        scattered = CharClass.of(0x01, 0x41, 0x81)
        assert not single_code(scattered)
        assert not lnfa_cam_eligible([CharClass.of("a"), scattered])

    def test_onehot_columns(self):
        assert onehot_switch_columns(1) == 2
        assert onehot_switch_columns(10) == 20


@given(byte_sets.filter(bool))
def test_codes_bounded_by_blocks(members):
    cc = CharClass.from_iterable(members)
    assert 1 <= codes_needed(cc) <= 8
    assert codes_needed(cc) <= max(blocks_touched(cc), 1)


@given(byte_sets.filter(bool))
def test_negation_symmetry(members):
    cc = CharClass.from_iterable(members)
    if not cc.is_any() and not (~cc).is_empty():
        assert codes_needed(cc) == codes_needed(~cc)
