"""Table 1 circuit model tests."""

import pytest

from repro.hardware.circuits import (
    CAMA_CLOCK_GHZ,
    RAP_CLOCK_GHZ,
    RAP_PIPELINE_STAGE_PS,
    TABLE1,
)


class TestTable1Values:
    """The published numbers, verbatim."""

    def test_sram_128(self):
        m = TABLE1.sram_128
        assert (m.energy_min_pj, m.energy_max_pj) == (1.0, 14.0)
        assert m.delay_ps == 298.0
        assert m.area_um2 == 5655.0
        assert m.leakage_ua == 57.0

    def test_sram_256(self):
        m = TABLE1.sram_256
        assert (m.energy_min_pj, m.energy_max_pj) == (2.0, 55.0)
        assert m.delay_ps == 410.0
        assert m.area_um2 == 18153.0
        assert m.leakage_ua == 228.0

    def test_cam(self):
        m = TABLE1.cam
        assert m.energy(0.0) == m.energy(1.0) == 4.0
        assert m.delay_ps == 325.0
        assert m.area_um2 == 2626.0
        assert m.leakage_ua == 14.0

    def test_controllers(self):
        assert TABLE1.local_controller.area_um2 == 2900.0
        assert TABLE1.global_controller.area_um2 == 1400.0
        assert TABLE1.local_controller.energy() == 2.0
        assert TABLE1.global_controller.energy() == 2.0

    def test_wire(self):
        assert TABLE1.global_wire_mm.energy() == pytest.approx(0.07)
        assert TABLE1.global_wire_mm.area_um2 == 50.0

    def test_clock_derivation(self):
        """2.08 GHz from the 436.1 ps stage with a ~10% margin."""
        raw_ghz = 1e3 / RAP_PIPELINE_STAGE_PS
        assert RAP_CLOCK_GHZ < raw_ghz
        assert RAP_CLOCK_GHZ == pytest.approx(raw_ghz / 1.1, rel=0.02)
        assert CAMA_CLOCK_GHZ == 2.14


class TestEnergyInterpolation:
    def test_linear(self):
        m = TABLE1.sram_128
        assert m.energy(0.0) == 1.0
        assert m.energy(1.0) == 14.0
        assert m.energy(0.5) == pytest.approx(7.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TABLE1.sram_128.energy(1.5)
        with pytest.raises(ValueError):
            TABLE1.sram_128.energy(-0.1)

    def test_leakage_power(self):
        assert TABLE1.sram_128.leakage_power_uw == pytest.approx(57 * 0.9)

    def test_components_enumeration(self):
        assert len(TABLE1.components()) == 6
