"""Tests for the buffer primitives of the I/O streaming path."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.buffers import Fifo, PingPongBuffer


class TestFifo:
    def test_fifo_order(self):
        fifo = Fifo(4)
        for x in (1, 2, 3):
            assert fifo.push(x)
        assert [fifo.pop(), fifo.pop(), fifo.pop()] == [1, 2, 3]

    def test_capacity_backpressure(self):
        fifo = Fifo(2)
        assert fifo.push(1) and fifo.push(2)
        assert not fifo.push(3)
        assert fifo.stats.rejected == 1
        assert len(fifo) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            Fifo(2).pop()

    def test_peek_does_not_consume(self):
        fifo = Fifo(2)
        fifo.push("a")
        assert fifo.peek() == "a"
        assert len(fifo) == 1
        with pytest.raises(IndexError):
            Fifo(2).peek()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Fifo(0)

    def test_occupancy_stats(self):
        fifo = Fifo(4)
        fifo.push(1)
        fifo.observe()
        fifo.push(2)
        fifo.observe()
        assert fifo.stats.mean_occupancy == pytest.approx(1.5)
        assert fifo.stats.max_occupancy == 2

    def test_flags(self):
        fifo = Fifo(1)
        assert fifo.empty and not fifo.full
        fifo.push(1)
        assert fifo.full and not fifo.empty


class TestPingPong:
    def test_fill_then_drain(self):
        buf = PingPongBuffer(8)
        assert buf.fill([1, 2, 3]) == 3
        assert buf.drain() == 1  # implicit swap on first drain
        assert buf.drain() == 2
        assert buf.drain() == 3
        assert buf.drain() is None

    def test_half_capacity_limit(self):
        buf = PingPongBuffer(8)  # halves of 4
        assert buf.fill(range(10)) == 4
        assert buf.stats.rejected == 1

    def test_swap_semantics(self):
        buf = PingPongBuffer(4)
        buf.fill([1, 2])
        assert buf.try_swap()
        # refill the back while the front drains
        assert buf.fill([3, 4]) == 2
        assert buf.drain() == 1
        assert not buf.try_swap()  # front not yet empty
        assert buf.drain() == 2
        assert buf.try_swap()
        assert buf.drain() == 3

    def test_swap_counter(self):
        buf = PingPongBuffer(4)
        buf.fill([1])
        buf.drain()
        assert buf.swaps == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PingPongBuffer(3)
        with pytest.raises(ValueError):
            PingPongBuffer(0)

    def test_observe(self):
        buf = PingPongBuffer(8)
        buf.fill([1, 2])
        buf.observe()
        assert buf.stats.mean_occupancy == 2
        assert buf.stats.max_occupancy == 2


@given(st.lists(st.integers(), max_size=60), st.integers(1, 8))
def test_fifo_preserves_order_and_content(items, capacity):
    fifo = Fifo(capacity)
    accepted = [x for x in items if fifo.push(x)]
    popped = [fifo.pop() for _ in range(len(fifo))]
    assert popped == accepted[: len(popped)]


@given(st.lists(st.integers(), max_size=40))
def test_pingpong_drains_everything_in_order(items):
    buf = PingPongBuffer(128)
    out = []
    position = 0
    while position < len(items) or buf.front_available or True:
        accepted = buf.fill(items[position : position + 4])
        position += accepted
        value = buf.drain()
        if value is not None:
            out.append(value)
        if position >= len(items) and value is None:
            break
    assert out == items
