"""Energy ledger and metric derivation tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.energy import EnergyLedger, Metrics


class TestLedger:
    def test_charge_accumulates(self):
        ledger = EnergyLedger()
        ledger.charge("cam", 4.0, 10)
        ledger.charge("cam", 4.0, 5)
        ledger.charge("switch", 1.5, 2)
        assert ledger.energy_pj == pytest.approx(63.0)
        assert ledger.energy_breakdown()["cam"] == pytest.approx(60.0)

    def test_zero_count_is_free(self):
        ledger = EnergyLedger()
        ledger.charge("cam", 4.0, 0)
        assert ledger.energy_pj == 0.0
        assert "cam" not in ledger.energy_breakdown()

    def test_negative_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.charge("cam", -1.0)
        with pytest.raises(ValueError):
            ledger.add_area("tile", -5.0)
        with pytest.raises(ValueError):
            ledger.add_leakage("tile", -5.0)

    def test_area_and_leakage(self):
        ledger = EnergyLedger()
        ledger.add_area("tile", 11181.0, 16)
        ledger.add_leakage("tile", 80.0, 16)
        assert ledger.area_mm2 == pytest.approx(16 * 11181e-6)
        assert ledger.leakage_w == pytest.approx(16 * 80e-6)

    def test_merge(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.charge("cam", 4.0, 1)
        b.charge("cam", 4.0, 2)
        b.charge("switch", 1.0, 1)
        b.add_area("tile", 100.0)
        a.merge(b)
        assert a.energy_breakdown() == {"cam": 12.0, "switch": 1.0}
        assert a.area_um2 == 100.0

    def test_unit_conversions(self):
        ledger = EnergyLedger()
        ledger.charge("x", 1e6)  # 1e6 pJ = 1 uJ
        assert ledger.energy_uj == pytest.approx(1.0)


class TestMetrics:
    def make(self, **kw):
        defaults = dict(
            energy_uj=10.0,
            area_mm2=2.0,
            cycles=100_000,
            input_symbols=100_000,
            clock_ghz=2.08,
        )
        defaults.update(kw)
        return Metrics(**defaults)

    def test_throughput_without_stalls(self):
        assert self.make().throughput_gchps == pytest.approx(2.08)

    def test_throughput_with_stalls(self):
        m = self.make(cycles=200_000)
        assert m.throughput_gchps == pytest.approx(1.04)

    def test_power(self):
        m = self.make()
        # 10 uJ over 100k cycles at 2.08 GHz
        expected = 10e-6 / (100_000 / 2.08e9)
        assert m.power_w == pytest.approx(expected)

    def test_leakage_adds_to_power(self):
        base = self.make().power_w
        assert self.make(leakage_w=0.5).power_w == pytest.approx(base + 0.5)

    def test_efficiency_and_density(self):
        m = self.make()
        assert m.energy_efficiency_gch_per_j == pytest.approx(
            m.throughput_gchps / m.power_w
        )
        assert m.compute_density_gchps_per_mm2 == pytest.approx(2.08 / 2.0)

    def test_degenerate_zero_cycles(self):
        m = self.make(cycles=0, input_symbols=0, energy_uj=0.0)
        assert m.throughput_gchps == 0.0
        assert m.power_w == 0.0


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.floats(0, 100),
            st.integers(0, 1000),
        ),
        max_size=30,
    )
)
def test_ledger_total_is_sum_of_breakdown(charges):
    ledger = EnergyLedger()
    for comp, pj, count in charges:
        ledger.charge(comp, pj, count)
    assert ledger.energy_pj == pytest.approx(
        sum(ledger.energy_breakdown().values())
    )
