"""Shared test helpers: oracles and regex/input strategies."""

from __future__ import annotations

import re

from hypothesis import strategies as st

from repro.regex import ast
from repro.regex.charclass import CharClass


def re_end_positions(pattern: str, text: str) -> list[int]:
    """Ground-truth end positions of non-empty matches via Python's re.

    Position ``i`` is reported iff some non-empty substring ending at
    ``i`` (inclusive) matches the whole pattern — the unanchored
    multi-match convention every engine in this project follows.
    """
    compiled = re.compile(pattern)
    out = []
    for end in range(len(text)):
        for start in range(end + 1):
            if compiled.fullmatch(text, start, end + 1):
                out.append(end)
                break
    return out


# -- hypothesis strategies -----------------------------------------------------

SAFE_ALPHABET = "abcd"


def charclasses() -> st.SearchStrategy[CharClass]:
    single = st.sampled_from(SAFE_ALPHABET).map(CharClass.of)
    multi = st.sets(
        st.sampled_from(SAFE_ALPHABET), min_size=1, max_size=3
    ).map(CharClass.from_iterable)
    return st.one_of(single, multi, st.just(CharClass.any()))


def regex_trees(
    max_leaves: int = 8, with_unbounded: bool = True, max_bound: int = 4
) -> st.SearchStrategy:
    """Random ASTs over a small alphabet, built via the smart constructors."""
    leaf = charclasses().map(ast.lit)

    def extend(sub):
        options = [
            st.tuples(sub, sub).map(lambda t: ast.concat(*t)),
            st.tuples(sub, sub).map(lambda t: ast.alt(*t)),
            sub.map(ast.opt),
            st.tuples(
                sub,
                st.integers(0, max_bound),
                st.integers(0, max_bound),
            ).map(lambda t: ast.repeat(t[0], t[1], t[1] + t[2])),
        ]
        if with_unbounded:
            options.append(sub.map(ast.star))
            options.append(sub.map(ast.plus))
        return st.one_of(options)

    return st.recursive(leaf, extend, max_leaves=max_leaves)


def inputs(alphabet: str = SAFE_ALPHABET + "x", max_size: int = 24):
    return st.text(alphabet=alphabet, max_size=max_size).map(
        lambda s: s.encode("ascii")
    )
