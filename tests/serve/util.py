"""Shared plumbing for the scan-service tests.

The environment has no pytest-asyncio: every async scenario runs under
:func:`run` — a plain ``asyncio.run`` with a global deadline so a wedged
scenario fails the test instead of hanging the suite.
"""

from __future__ import annotations

import asyncio
import contextlib
import random

from repro.engine.checkpoint import DurableScan
from repro.serve.registry import TenantEntry, TenantRegistry
from repro.serve.server import ScanServer, ServeConfig
from repro.simulators.rap import RAPSimulator

# Mixed-mode ruleset (LNFA bins + NBVA + NFA) with an end anchor, so the
# streaming deferral of the final segment is actually load-bearing.
PATTERNS = ["abc", "a.c", "end$", "hello|world", "xy*z"]
# Compiles to a genuinely different fingerprint (hot-reload tests).
ALT_PATTERNS = ["abc", "world", "zz+"]
ALPHABET = b"abcxyz endhello world"


def make_data(length: int = 6000, seed: int = 7) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.choice(ALPHABET) for _ in range(length)) + b" helloend"


def golden_totals(
    registry: TenantRegistry, data: bytes, patterns=PATTERNS
) -> tuple[int, float]:
    """Matches and energy of one uninterrupted, non-serve scan."""
    ruleset, mapping, _ = registry.compile(patterns)
    scan = DurableScan(
        ruleset, mapping, registry.hw, bin_size=registry.bin_size
    )
    scan.feed(data, at_end=True)
    matches = sum(len(ends) for ends in scan.match_lists().values())
    energy = RAPSimulator(registry.hw).run_from_activity(
        ruleset, scan.finish(), mapping
    ).energy_uj
    return matches, energy


def entry_for(
    registry: TenantRegistry,
    patterns,
    *,
    tenant: str = "t",
    generation: int = 1,
) -> TenantEntry:
    """A TenantEntry without touching the registry's namespace state."""
    ruleset, mapping, fingerprint = registry.compile(patterns)
    return TenantEntry(
        tenant=tenant,
        generation=generation,
        patterns=tuple(patterns),
        ruleset=ruleset,
        mapping=mapping,
        fingerprint=fingerprint,
    )


@contextlib.asynccontextmanager
async def running_server(checkpoint_dir, registry=None, **overrides):
    config = ServeConfig(checkpoint_dir=str(checkpoint_dir), **overrides)
    server = ScanServer(config, registry)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


async def finish_stream(client, data: bytes, segment_bytes: int = 800):
    """Stream ``data`` from the client's current offset and finish."""
    while client.offset < len(data):
        segment = data[client.offset : client.offset + segment_bytes]
        await client.send(segment)
        client.offset += len(segment)
    return await client.end()


async def poll_until(predicate, timeout: float = 10.0, interval: float = 0.05):
    """Await a condition the server reaches asynchronously (watchdogs)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() >= deadline:
            raise AssertionError("condition not reached before deadline")
        await asyncio.sleep(interval)


def run(coro, timeout: float = 60.0):
    async def guarded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(guarded())
