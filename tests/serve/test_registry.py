"""Tenant-namespace tests: fingerprints, generations, reload semantics."""

import pytest

from repro.errors import CompileError, ServeError
from repro.serve.registry import TenantRegistry, ruleset_fingerprint
from tests.serve.util import ALT_PATTERNS, PATTERNS


@pytest.fixture()
def registry():
    # Namespace state mutates under reload: every test gets its own.
    return TenantRegistry()


class TestCompile:
    def test_fingerprint_is_deterministic(self, registry):
        first, _, fp1 = registry.compile(PATTERNS)
        second, _, fp2 = registry.compile(list(PATTERNS))
        assert fp1 == fp2
        assert fp1 == ruleset_fingerprint(first) == ruleset_fingerprint(second)

    def test_distinct_patterns_distinct_fingerprints(self, registry):
        _, _, fp1 = registry.compile(PATTERNS)
        _, _, fp2 = registry.compile(ALT_PATTERNS)
        assert fp1 != fp2

    def test_empty_patterns_rejected(self, registry):
        with pytest.raises(CompileError):
            registry.compile([])

    def test_invalid_pattern_rejected(self, registry):
        with pytest.raises(CompileError):
            registry.compile(["a("])


class TestNamespace:
    def test_open_installs_generation_one(self, registry):
        entry = registry.open("t", PATTERNS)
        assert entry.generation == 1
        assert entry.patterns == tuple(PATTERNS)
        assert registry.get("t") is entry
        assert registry.tenants() == ["t"]

    def test_open_reuses_matching_generation(self, registry):
        first = registry.open("t", PATTERNS)
        assert registry.open("t", list(PATTERNS)) is first

    def test_reload_bumps_generation(self, registry):
        first = registry.open("t", PATTERNS)
        second = registry.reload("t", ALT_PATTERNS)
        assert second.generation == first.generation + 1
        assert second.fingerprint != first.fingerprint
        assert registry.get("t") is second

    def test_identical_reload_is_a_noop(self, registry):
        first = registry.open("t", PATTERNS)
        again = registry.reload("t", list(PATTERNS))
        assert again is first  # no generation bump, no session rotation

    def test_failed_reload_preserves_current_generation(self, registry):
        first = registry.open("t", PATTERNS)
        with pytest.raises(CompileError):
            registry.reload("t", ["a("])
        assert registry.get("t") is first

    def test_tenants_are_isolated(self, registry):
        a = registry.open("a", PATTERNS)
        b = registry.open("b", ALT_PATTERNS)
        registry.reload("a", ALT_PATTERNS)
        assert registry.get("b") is b
        assert registry.get("a") is not a
        assert registry.tenants() == ["a", "b"]

    def test_entry_for_missing_tenant_raises(self, registry):
        with pytest.raises(ServeError, match="ghost"):
            registry.entry_for("ghost", 1)

    def test_get_missing_tenant_is_none(self, registry):
        assert registry.get("nobody") is None
