"""Wire-protocol tests: codec strictness and framing robustness."""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    read_frame,
)


class TestCodec:
    def test_round_trip(self):
        frame = {"op": "data", "b64": "aGk=", "n": 3}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encoding_is_one_line(self):
        wire = encode_frame({"op": "ping"})
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1

    def test_unparsable_json_rejected(self):
        with pytest.raises(ProtocolError, match="unparsable"):
            decode_frame(b"\x00this is not a frame\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="not an object"):
            decode_frame(b"[1,2,3]\n")

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError, match="no op"):
            decode_frame(b'{"x": 1}\n')

    def test_blank_op_rejected(self):
        with pytest.raises(ProtocolError, match="no op"):
            decode_frame(b'{"op": ""}\n')

    def test_frame_limit_admits_service_segments(self):
        # Base64 inflates by 4/3: a limit under ~5.5 MiB would reject
        # legitimate data frames near the documented segment ceiling.
        assert MAX_FRAME_BYTES >= 8 << 20


class TestReadFrame:
    def test_reads_frames_then_none_at_eof(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "ping"}))
            reader.feed_data(encode_frame({"op": "pong"}))
            reader.feed_eof()
            return (
                await read_frame(reader),
                await read_frame(reader),
                await read_frame(reader),
            )

        first, second, third = asyncio.run(scenario())
        assert first["op"] == "ping"
        assert second["op"] == "pong"
        assert third is None

    def test_truncated_final_line_is_a_protocol_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b'{"op": "ping"')  # peer died mid-frame
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="truncated"):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_oversized_line_is_a_protocol_error(self):
        async def scenario():
            reader = asyncio.StreamReader(limit=1024)
            reader.feed_data(b"x" * 4096)  # no newline inside the limit
            with pytest.raises(ProtocolError, match="size limit"):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_read_deadline_expires(self):
        async def scenario():
            reader = asyncio.StreamReader()  # nothing will ever arrive
            with pytest.raises(asyncio.TimeoutError):
                await read_frame(reader, timeout=0.05)

        asyncio.run(scenario())

    def test_malformed_line_is_a_protocol_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"not json\n")
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="unparsable"):
                await read_frame(reader)

        asyncio.run(scenario())
