"""ScanSession tests: segment deferral, envelopes, epoch rotation.

The session is the durability unit of the service; these tests prove
its state machine without sockets: a checkpointed envelope restored in
a *fresh* registry (another worker) continues bit-identically, and a
hot-reload swap prices each epoch under the ruleset that scanned it.
"""

import json

import pytest

from repro.engine.checkpoint import CheckpointStore, DurableScan
from repro.errors import CheckpointError
from repro.serve.registry import TenantRegistry
from repro.serve.session import ScanSession
from repro.simulators.rap import RAPSimulator
from tests.serve.util import ALT_PATTERNS, PATTERNS, entry_for

SEGMENT = 700


def build_session(registry, tmp_path, patterns=PATTERNS, generation=1):
    store = CheckpointStore(tmp_path / "ck", session="t/s")
    entry = entry_for(registry, patterns, generation=generation)
    return ScanSession("t", "s", entry, store, registry.hw)


def feed_range(session, data, start, stop):
    events = []
    for at in range(start, stop, SEGMENT):
        events.extend(session.feed(data[at : at + SEGMENT]))
    return events


class TestStreaming:
    def test_final_segment_is_deferred_for_end_anchors(
        self, registry, data, golden, tmp_path
    ):
        session = build_session(registry, tmp_path)
        events = feed_range(session, data, 0, len(data))
        # The last segment is still pending: it has not been scanned,
        # so the end-anchored pattern cannot have fired yet.
        assert session.pending_bytes > 0
        assert session.offset == len(data) - session.pending_bytes
        before_end = session.total_matches()
        events.extend(session.end())
        assert session.pending_bytes == 0
        assert session.offset == len(data)
        matches, energy = golden
        assert session.total_matches() == matches > before_end
        assert session.total_energy_uj() == energy
        assert len(events) == matches
        assert events == sorted(events)

    def test_park_drops_pending_bytes(self, registry, data, tmp_path):
        session = build_session(registry, tmp_path)
        session.feed(data[:SEGMENT])
        assert session.pending_bytes == SEGMENT
        assert session.offset == 0  # nothing durably consumed yet
        session.park()
        assert session.pending_bytes == 0
        assert session.offset == 0


class TestEnvelope:
    def test_roundtrip_resumes_bit_identically(
        self, registry, data, golden, tmp_path
    ):
        session = build_session(registry, tmp_path)
        split = (len(data) // 2 // SEGMENT) * SEGMENT
        first_events = feed_range(session, data, 0, split)
        session.park()  # what the server does before detaching
        # Through JSON, as the checkpoint store would persist it.
        envelope = json.loads(json.dumps(session.envelope()))

        # Another worker: fresh registry (recompile is a cache hit),
        # fresh store object.
        other = TenantRegistry()
        store = CheckpointStore(tmp_path / "ck2", session="t/s")
        resumed = ScanSession.from_envelope(envelope, other, store)
        assert resumed.offset == session.offset
        assert resumed.generation == session.generation
        rest = feed_range(resumed, data, resumed.offset, len(data))
        rest.extend(resumed.end())
        matches, energy = golden
        assert resumed.total_matches() == matches
        assert resumed.total_energy_uj() == energy
        # Emitted counts persisted: the resumed session emits exactly
        # the events the first one had not, with no replays.
        combined = sorted(first_events + rest)
        assert len(combined) == matches
        assert len({tuple(e) for e in combined}) == matches

    def test_checkpoint_persists_through_store(
        self, registry, data, tmp_path
    ):
        session = build_session(registry, tmp_path)
        feed_range(session, data, 0, 3 * SEGMENT)
        session.park()
        assert session.checkpoint() is True
        loaded = session.store.load_latest()
        assert loaded["serve_format"] == "rap-serve-session"
        assert loaded["tenant"] == "t"
        assert loaded["patterns"] == list(PATTERNS)
        assert loaded["scan"]["offset"] == session.offset

    def test_wrong_format_rejected(self, registry, data, tmp_path):
        session = build_session(registry, tmp_path)
        envelope = session.envelope()
        envelope["serve_format"] = "something-else"
        with pytest.raises(CheckpointError, match="serve_format"):
            ScanSession.from_envelope(envelope, registry, session.store)

    def test_wrong_version_rejected(self, registry, tmp_path):
        session = build_session(registry, tmp_path)
        envelope = session.envelope()
        envelope["serve_version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            ScanSession.from_envelope(envelope, registry, session.store)

    def test_missing_field_is_structured(self, registry, tmp_path):
        session = build_session(registry, tmp_path)
        envelope = session.envelope()
        del envelope["epoch_start"]
        with pytest.raises(CheckpointError, match="malformed"):
            ScanSession.from_envelope(envelope, registry, session.store)

    def test_weight_override(self, registry, tmp_path):
        session = build_session(registry, tmp_path)
        session.weight = 3.0
        envelope = json.loads(json.dumps(session.envelope()))
        kept = ScanSession.from_envelope(envelope, registry, session.store)
        assert kept.weight == 3.0
        forced = ScanSession.from_envelope(
            envelope, registry, session.store, weight=7.0
        )
        assert forced.weight == 7.0


class TestHotReload:
    def test_identical_fingerprint_swap_is_a_noop(
        self, registry, data, tmp_path
    ):
        session = build_session(registry, tmp_path)
        session.feed(data[:SEGMENT])
        scan = session.scan
        entry = session.entry
        # A new generation compiling to the same fingerprint: no-op.
        same = entry_for(registry, PATTERNS, generation=2)
        assert session.maybe_swap(same) is None
        assert session.scan is scan
        assert session.entry is entry
        assert session.pending_bytes == SEGMENT  # nothing flushed

    def test_swap_prices_each_epoch_under_its_own_ruleset(
        self, registry, data, tmp_path
    ):
        split = 4 * SEGMENT
        session = build_session(registry, tmp_path)
        events = feed_range(session, data, 0, split)
        new_entry = entry_for(registry, ALT_PATTERNS, generation=2)
        flushed = session.maybe_swap(new_entry)
        assert flushed is not None
        events.extend(flushed)
        assert session.epoch_start == split
        assert session.offset == split
        assert session.generation == 2
        events.extend(feed_range(session, data, split, len(data)))
        events.extend(session.end())

        # Two-epoch golden: the old ruleset over the first span (never
        # at-end — the stream continued), the new one over the rest.
        old = entry_for(registry, PATTERNS)
        scan_a = DurableScan(old.ruleset, old.mapping, registry.hw)
        scan_a.feed(data[:split], at_end=False)
        matches_a = sum(len(e) for e in scan_a.match_lists().values())
        energy_a = RAPSimulator(registry.hw).run_from_activity(
            old.ruleset, scan_a.finish(), old.mapping
        ).energy_uj
        scan_b = DurableScan(
            new_entry.ruleset, new_entry.mapping, registry.hw
        )
        scan_b.feed(data[split:], at_end=True)
        matches_b = sum(len(e) for e in scan_b.match_lists().values())
        energy_b = RAPSimulator(registry.hw).run_from_activity(
            new_entry.ruleset, scan_b.finish(), new_entry.mapping
        ).energy_uj

        assert session.total_matches() == matches_a + matches_b
        assert session.total_energy_uj() == energy_a + energy_b
        assert len(events) == matches_a + matches_b
