"""Unit tests for the client's decorrelated-jitter reconnect backoff.

The properties that matter operationally: every delay stays inside
``[base, cap]``, a server ``retry_after`` hint re-centers (but never
escapes) that window, a successful welcome resets the episode, and the
per-session seeding keeps chaos runs reproducible while decorrelating
distinct sessions from one another.
"""

from repro.serve.client import BACKOFF_BASE, BACKOFF_CAP, _Backoff


class TestBackoffBounds:
    def test_all_delays_within_base_and_cap(self):
        backoff = _Backoff("t/s")
        for hint in [None, 0.01, 0.5, 2.0, 100.0] * 40:
            delay = backoff.next(hint)
            assert BACKOFF_BASE <= delay <= BACKOFF_CAP

    def test_hint_recenters_the_window(self):
        # A fresh episode with a 2 s hint draws from roughly
        # [hint/2, hint*1.5] — never below half the hint, so a herd of
        # migrated clients cannot all stampede back instantly.
        for attempt in range(50):
            delay = _Backoff(f"t/s{attempt}").next(2.0)
            assert 1.0 <= delay <= 3.0

    def test_huge_hint_is_capped(self):
        # lower clamps to the cap, so the draw degenerates to exactly it.
        assert _Backoff("t/s").next(100.0) == BACKOFF_CAP

    def test_growth_is_bounded_by_previous_delay(self):
        backoff = _Backoff("t/s")
        prev = BACKOFF_BASE
        for _ in range(100):
            delay = backoff.next()
            assert delay <= max(BACKOFF_BASE * 3, prev * 3)
            prev = delay

    def test_reset_starts_the_episode_small_again(self):
        backoff = _Backoff("t/s")
        for _ in range(30):
            backoff.next()  # let the window grow toward the cap
        backoff.reset()
        assert backoff.next() <= BACKOFF_BASE * 3


class TestBackoffSeeding:
    def test_same_session_is_reproducible(self):
        a = _Backoff("tenant/session")
        b = _Backoff("tenant/session")
        assert [a.next() for _ in range(20)] == [
            b.next() for _ in range(20)
        ]

    def test_distinct_sessions_decorrelate(self):
        a = _Backoff("tenant/s1")
        b = _Backoff("tenant/s2")
        assert [a.next() for _ in range(20)] != [
            b.next() for _ in range(20)
        ]
