"""Fleet supervisor tests: routing, failover, migration, breakers.

The acceptance bar mirrors the single-worker chaos suite: whatever the
fleet does to a session — planned live migration between two healthy
workers, or re-homing after a SIGKILLed worker — the final matches and
float energy must equal an uninterrupted serial scan exactly.

Worker processes are real ``rap serve`` subprocesses (spawned through
:class:`FleetSupervisor`), so these tests also prove the readiness
handshake, the shared checkpoint root, and the PYTHONPATH plumbing.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import types

import pytest

from repro.engine.budget import CircuitBreaker
from repro.engine.faults import FaultDirective, FaultPlan
from repro.errors import AdmissionError, ServeConfigError, ServeError
from repro.serve.client import ScanClient
from repro.serve.fleet import FleetConfig, FleetSupervisor, WorkerHandle
from repro.serve.protocol import read_frame, send_frame
from tests.serve.util import PATTERNS, poll_until, run

HOST = "127.0.0.1"


@contextlib.asynccontextmanager
async def running_fleet(checkpoint_dir, plan=None, **overrides):
    defaults = dict(
        workers=2,
        checkpoint_dir=str(checkpoint_dir),
        health_interval=0.25,
        ping_timeout=2.0,
        fail_threshold=2,
        restart_backoff=0.1,
        migrate_hold_seconds=1.5,
        drain_seconds=2.0,
        spawn_timeout=60.0,
        checkpoint_interval_bytes=1024,
    )
    defaults.update(overrides)
    supervisor = FleetSupervisor(
        FleetConfig(**defaults), plan=plan or FaultPlan()
    )
    await supervisor.start()
    try:
        yield supervisor
    finally:
        await supervisor.stop()


def pacing_plan(count: int = 40, seconds: float = 0.2) -> FaultPlan:
    """Stalls at every segment ordinal: keeps a stream alive long
    enough for the supervisor to act on it mid-flight."""
    return FaultPlan.parse(
        ";".join(f"stall@{i}*{seconds}" for i in range(1, count))
    )


def fake_worker(index: int, config, state=WorkerHandle.HEALTHY, conns=0):
    worker = WorkerHandle(index, config)
    worker.state = state
    worker.proc = types.SimpleNamespace(
        returncode=None,
        kill=lambda: None,
        send_signal=lambda sig: None,
    )
    worker.port = 1
    worker.conns = conns
    return worker


class TestFleetConfig:
    def test_rejects_zero_workers(self, tmp_path):
        with pytest.raises(ServeConfigError):
            FleetConfig(workers=0, checkpoint_dir=str(tmp_path)).validate()

    def test_rejects_nonpositive_intervals(self, tmp_path):
        with pytest.raises(ServeConfigError):
            FleetConfig(
                checkpoint_dir=str(tmp_path), health_interval=0.0
            ).validate()
        with pytest.raises(ServeConfigError):
            FleetConfig(
                checkpoint_dir=str(tmp_path), fail_threshold=0
            ).validate()

    def test_rejects_inverted_caps(self, tmp_path):
        with pytest.raises(ServeConfigError):
            FleetConfig(
                checkpoint_dir=str(tmp_path),
                breaker_cooldown=5.0,
                breaker_cooldown_cap=1.0,
            ).validate()


class TestRouting:
    """Pure routing logic over fake workers (no subprocesses)."""

    def _supervisor(self, tmp_path, nworkers=2):
        config = FleetConfig(
            workers=nworkers, checkpoint_dir=str(tmp_path)
        )
        supervisor = FleetSupervisor(config, plan=FaultPlan())
        supervisor.workers = [
            fake_worker(i, config) for i in range(nworkers)
        ]
        return supervisor

    def test_least_connections_when_unhomed(self, tmp_path):
        async def scenario():
            sup = self._supervisor(tmp_path)
            sup.workers[0].conns = 3
            assert sup._route("t/s").index == 1

        run(scenario())

    def test_home_wins_while_healthy(self, tmp_path):
        async def scenario():
            sup = self._supervisor(tmp_path)
            sup.workers[0].conns = 9  # load must not override stickiness
            sup._homes["t/s"] = 0
            assert sup._route("t/s").index == 0

        run(scenario())

    def test_suspect_home_refuses_instead_of_rerouting(self, tmp_path):
        # Fence before failover: re-homing while the old worker might
        # still write checkpoints would fork the session's lineage.
        async def scenario():
            sup = self._supervisor(tmp_path)
            sup._homes["t/s"] = 0
            sup.workers[0].state = WorkerHandle.SUSPECT
            assert sup._route("t/s") is None
            # Once fenced, homes are cleared and routing recovers.
            sup._clear_homes(0)
            assert sup._route("t/s").index == 1
            assert sup.stats.rehomed == 1

        run(scenario())

    def test_release_hold_excludes_source(self, tmp_path):
        async def scenario():
            sup = self._supervisor(tmp_path)
            now = asyncio.get_running_loop().time()
            sup.workers[0].hold_until = now + 30.0
            sup.workers[0].conns = 0
            sup.workers[1].conns = 5  # held worker loses even at 0 conns
            assert sup._route("t/s").index == 1
            # ...unless it is the only worker left.
            sup.workers[1].state = WorkerHandle.DOWN
            assert sup._route("t/s").index == 0

        run(scenario())

    def test_no_healthy_worker_returns_none(self, tmp_path):
        async def scenario():
            sup = self._supervisor(tmp_path)
            for worker in sup.workers:
                worker.state = WorkerHandle.DOWN
            assert sup._route("t/s") is None

        run(scenario())

    def test_fleet_fault_victims_rotate(self, tmp_path):
        async def scenario():
            sup = self._supervisor(tmp_path, nworkers=3)
            hits: list[tuple[int, str]] = []
            for worker in sup.workers:
                worker.proc.kill = (
                    lambda i=worker.index: hits.append((i, "kill"))
                )
                worker.proc.send_signal = (
                    lambda sig, i=worker.index: hits.append((i, "stop"))
                )
            kill = FaultDirective("killworker", 1)
            wedge = FaultDirective("wedge", 2)
            sup._fire_fleet_fault(kill)
            sup._fire_fleet_fault(wedge)
            sup._fire_fleet_fault(kill)
            sup._fire_fleet_fault(kill)
            assert hits == [
                (0, "kill"),
                (1, "stop"),
                (2, "kill"),
                (0, "kill"),
            ]
            assert sup.stats.fleet_faults == 4

        run(scenario())

    def test_breaker_is_per_tenant(self, tmp_path):
        sup = self._supervisor(tmp_path)
        a = sup._breaker_for("a")
        assert sup._breaker_for("a") is a
        assert sup._breaker_for("b") is not a
        assert a.failure_threshold == sup.config.breaker_threshold


class TestLiveMigration:
    """The tentpole acceptance test: planned drain between live workers."""

    def test_session_migrates_between_live_workers(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_fleet(tmp_path) as sup:
                # Pre-open control plane answers without a session.
                reader, writer = await asyncio.open_connection(
                    HOST, sup.port
                )
                send_frame(writer, {"op": "ping"})
                await writer.drain()
                assert (await read_frame(reader, 10))["op"] == "pong"
                send_frame(writer, {"op": "health"})
                await writer.drain()
                report = await read_frame(reader, 10)
                assert report["op"] == "health_report"
                assert [w["state"] for w in report["workers"]] == [
                    "healthy",
                    "healthy",
                ]
                writer.close()

                client = ScanClient(HOST, sup.port, "t", "mig", PATTERNS)
                task = asyncio.create_task(
                    client.run(
                        data, segment_bytes=200, plan=pacing_plan()
                    )
                )
                key = "t/mig"
                await poll_until(lambda: key in sup._homes, timeout=30)
                source = sup._homes[key]
                pids = [w.proc.pid for w in sup.workers]

                released = await sup.release_worker(source)
                assert released == 1

                # The reconnect must land on the *other* live worker.
                await poll_until(
                    lambda: sup._homes.get(key) is not None
                    and sup._homes[key] != source,
                    timeout=30,
                )
                destination = sup._homes[key]
                assert destination != source

                result = await task
                # Planned drain, not a crash: the same worker processes
                # are alive before and after the migration.
                assert [w.proc.pid for w in sup.workers] == pids
                assert all(w.alive for w in sup.workers)
                assert sup.stats.releases == 1
                assert sup.stats.restarts == 0
                assert client.reconnects >= 1
                # Byte-identity: integer matches AND float energy equal
                # the uninterrupted golden.
                assert (
                    result["matches"],
                    result["energy_uj"],
                ) == golden

        run(scenario(), timeout=180)


class TestFailover:
    def test_sigkilled_worker_sessions_rehome(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_fleet(
                tmp_path, health_interval=0.15, fail_threshold=1
            ) as sup:
                client = ScanClient(HOST, sup.port, "t", "kill", PATTERNS)
                task = asyncio.create_task(
                    client.run(
                        data, segment_bytes=200, plan=pacing_plan()
                    )
                )
                key = "t/kill"
                await poll_until(lambda: key in sup._homes, timeout=30)
                victim = sup.workers[sup._homes[key]]
                victim_pid = victim.proc.pid
                victim.proc.kill()  # unplanned SIGKILL mid-stream

                result = await task
                assert (
                    result["matches"],
                    result["energy_uj"],
                ) == golden
                assert client.reconnects >= 1
                assert sup.stats.fences >= 1
                # The victim is eventually restarted as a new process.
                await poll_until(
                    lambda: sup.stats.restarts >= 1, timeout=30
                )
                assert victim.alive
                assert victim.proc.pid != victim_pid

        run(scenario(), timeout=180)

    def test_wedged_worker_is_fenced_and_restarted(self, tmp_path):
        async def scenario():
            async with running_fleet(
                tmp_path,
                health_interval=0.15,
                ping_timeout=0.5,
                fail_threshold=2,
            ) as sup:
                victim = sup.workers[0]
                victim_pid = victim.proc.pid
                victim.proc.send_signal(signal.SIGSTOP)  # alive but mute
                # The ping deadline trips the gate; SIGKILL fences a
                # stopped process just fine, and the restart follows.
                await poll_until(
                    lambda: sup.stats.restarts >= 1, timeout=30
                )
                assert sup.stats.fences >= 1
                assert victim.alive
                assert victim.proc.pid != victim_pid

        run(scenario(), timeout=120)


class TestCircuitBreaker:
    def test_pathological_tenant_trips_and_recovers(
        self, registry, data, tmp_path
    ):
        async def scenario():
            async with running_fleet(
                tmp_path,
                breaker_threshold=2,
                breaker_cooldown=0.5,
                breaker_cooldown_cap=8.0,
            ) as sup:
                bad = ["(unclosed"]

                async def bad_open(n: int):
                    client = ScanClient(HOST, sup.port, "evil", f"s{n}", bad)
                    await client.connect()

                # Two compile failures reach the workers and count.
                for n in range(2):
                    with pytest.raises(ServeError):
                        await bad_open(n)
                breaker = sup._breaker_for("evil")
                assert breaker.state == CircuitBreaker.OPEN
                assert breaker.trips == 1

                # The third never reaches a worker: refused up front
                # with a structured retry_after.
                with pytest.raises(AdmissionError) as excinfo:
                    await bad_open(2)
                assert excinfo.value.retry_after is not None
                assert sup.stats.rejected_breaker == 1

                # After the cool-down one half-open probe is admitted;
                # it fails again, re-opening with an escalated cooldown.
                await asyncio.sleep(0.6)
                with pytest.raises(ServeError):
                    await bad_open(3)
                assert breaker.state == CircuitBreaker.OPEN
                assert breaker.trips == 2

                # An innocent tenant is untouched throughout.
                good = ScanClient(HOST, sup.port, "good", "s0", PATTERNS)
                await good.connect()
                await good.end()
                assert sup._breaker_for("good").state == (
                    CircuitBreaker.CLOSED
                )

        run(scenario(), timeout=120)
