"""End-to-end server tests over real sockets.

Every scenario asserts the robustness contract the ISSUE names: no
matter how a connection ends — conflict, idle eviction, shedding,
drain, protocol garbage — the session resumes to byte-identical
matches and energy, proven against the uninterrupted golden.
"""

import asyncio

import pytest

from repro.engine.budget import AdmissionPolicy
from repro.errors import AdmissionError, ServeError
from repro.serve import protocol
from repro.serve.client import ScanClient
from repro.serve.protocol import encode_frame, read_frame, send_frame
from repro.serve.registry import TenantRegistry
from repro.serve.server import (
    RETRY_AFTER_ADMISSION,
    RETRY_AFTER_MIGRATE,
    RETRY_AFTER_SHED,
    ScanServer,
    ServeConfig,
    session_key,
)
from tests.serve.util import (
    ALT_PATTERNS,
    PATTERNS,
    entry_for,
    finish_stream,
    poll_until,
    run,
    running_server,
)

SEG = 700


class TestConfig:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("port", 70000),
            ("checkpoint_dir", ""),
            ("max_sessions", 0),
            ("max_rss_mb", -1.0),
            ("max_open_fds", 0),
            ("idle_timeout", 0.0),
            ("read_timeout", -1.0),
            ("drain_seconds", -0.5),
            ("checkpoint_interval_bytes", 0),
        ],
    )
    def test_out_of_range_fields_rejected(self, field, value):
        from repro.errors import ServeConfigError

        config = ServeConfig(**{field: value})
        with pytest.raises(ServeConfigError):
            config.validate()
        with pytest.raises(ServeConfigError):
            ScanServer(config)

    def test_defaults_validate(self):
        assert ServeConfig().validate() is not None

    def test_policy_mirrors_caps(self):
        policy = ServeConfig(
            max_sessions=3, max_rss_mb=512.0, max_open_fds=100
        ).policy()
        assert policy == AdmissionPolicy(
            max_sessions=3, max_rss_mb=512.0, max_open_fds=100
        )


class TestStreaming:
    def test_plain_stream_matches_golden(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "plain", "s", PATTERNS
                )
                result = await client.run(data, segment_bytes=SEG)
                matches, energy = golden
                assert result["matches"] == matches
                assert result["energy_uj"] == energy
                assert result["offset"] == len(data)
                assert len(client.events) == matches
                assert client.reconnects == 0
                assert server.stats.completed == 1
                assert server.stats.admitted == 1
                # Completion clears the checkpoint lineage.
                assert server._store_for(
                    session_key("plain", "s")
                ).load_latest() is None

        run(scenario())

    def test_completed_sessions_free_admission_slots(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(
                tmp_path, registry, max_sessions=1
            ) as server:
                for name in ("one", "two"):
                    client = ScanClient(
                        "127.0.0.1", server.port, "seq", name, PATTERNS
                    )
                    result = await client.run(data, segment_bytes=SEG)
                    assert result["matches"] == golden[0]
                assert server.stats.completed == 2

        run(scenario())


class TestAdmission:
    def test_session_cap_rejects_with_retry_after(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(
                tmp_path, registry, max_sessions=1
            ) as server:
                first = ScanClient(
                    "127.0.0.1", server.port, "adm", "a", PATTERNS
                )
                await first.connect()
                second = ScanClient(
                    "127.0.0.1", server.port, "adm", "b", PATTERNS
                )
                with pytest.raises(AdmissionError) as info:
                    await second.connect()
                assert info.value.retry_after == RETRY_AFTER_ADMISSION
                assert info.value.limit == "max_sessions"
                assert server.stats.rejected == 1
                # The slot frees when the first session completes.
                first.offset = 0
                result = await finish_stream(first, data, SEG)
                assert result["matches"] == golden[0]
                await second.connect()
                result = await finish_stream(second, data, SEG)
                assert result["matches"] == golden[0]

        run(scenario())

    def test_second_attachment_conflicts(self, registry, tmp_path):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                first = ScanClient(
                    "127.0.0.1", server.port, "conf", "s", PATTERNS
                )
                await first.connect()
                second = ScanClient(
                    "127.0.0.1", server.port, "conf", "s", PATTERNS
                )
                with pytest.raises(ServeError, match="conflict"):
                    await second.connect()
                await first.close()

        run(scenario())

    def test_resume_takeover_supersedes_stale_attachment(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                first = ScanClient(
                    "127.0.0.1", server.port, "take", "s", PATTERNS
                )
                await first.connect()
                for i in range(3):
                    await first.send(data[i * SEG : (i + 1) * SEG])
                first.abort()  # dead transport the server has not seen
                second = ScanClient(
                    "127.0.0.1", server.port, "take", "s", PATTERNS
                )
                welcome = await second.connect(resume=True)
                # Durable offset lags the aborted sender by the one
                # pending segment; the takeover replays it exactly once.
                assert welcome["offset"] <= 3 * SEG
                result = await finish_stream(second, data, SEG)
                matches, energy = golden
                assert result["matches"] == matches
                assert result["energy_uj"] == energy
                await first.close()

        run(scenario())

    def test_compile_failure_is_a_structured_refusal(
        self, registry, tmp_path
    ):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "bad", "s", ["a("]
                )
                with pytest.raises(ServeError, match="compile"):
                    await client.connect()

        run(scenario())


class TestWatchdogs:
    def test_attached_idle_session_is_evicted_then_resumes(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(
                tmp_path,
                registry,
                idle_timeout=0.4,
                read_timeout=0.1,
                watchdog_interval=0.05,
            ) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "idle", "s", PATTERNS
                )
                await client.connect()
                for i in range(2):
                    await client.send(data[i * SEG : (i + 1) * SEG])
                # Go silent: the read-deadline loop notices the idle
                # timeout, checkpoints, evicts, and says goodbye.
                bye = await asyncio.wait_for(client._control.get(), 10.0)
                assert bye["op"] == "bye"
                assert bye["reason"] == "idle"
                assert server.stats.evicted_idle == 1
                assert session_key("idle", "s") not in server._sessions
                await client.reconnect()
                result = await finish_stream(client, data, SEG)
                matches, energy = golden
                assert result["matches"] == matches
                assert result["energy_uj"] == energy
                assert server.stats.resumed == 1

        run(scenario())

    def test_parked_session_is_evicted_by_the_watchdog(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(
                tmp_path,
                registry,
                idle_timeout=0.3,
                watchdog_interval=0.05,
            ) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "park", "s", PATTERNS
                )
                await client.connect()
                for i in range(2):
                    await client.send(data[i * SEG : (i + 1) * SEG])
                bye = await client.detach()
                assert bye["reason"] == "detach"
                await poll_until(lambda: server.stats.evicted_idle >= 1)
                assert session_key("park", "s") not in server._sessions
                await client.reconnect()
                result = await finish_stream(client, data, SEG)
                assert result["matches"] == golden[0]
                assert result["energy_uj"] == golden[1]

        run(scenario())

    def test_shed_drops_exactly_the_lowest_weight_session(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                light = ScanClient(
                    "127.0.0.1", server.port, "shed", "a", PATTERNS,
                    weight=1.0,
                )
                heavy = ScanClient(
                    "127.0.0.1", server.port, "shed", "b", PATTERNS,
                    weight=5.0,
                )
                await light.connect()
                await heavy.connect()
                for i in range(2):
                    await light.send(data[i * SEG : (i + 1) * SEG])
                    await heavy.send(data[i * SEG : (i + 1) * SEG])
                key = await server.shed_lowest("injected pressure")
                assert key == session_key("shed", "a")
                assert server.stats.shed == 1
                shed_frame = await asyncio.wait_for(
                    light._control.get(), 10.0
                )
                assert shed_frame["op"] == "error"
                assert shed_frame["code"] == protocol.ERR_SHED
                assert shed_frame["retry_after"] == RETRY_AFTER_SHED
                assert session_key("shed", "a") not in server._sessions
                assert session_key("shed", "b") in server._sessions
                # Shedding costs a reconnect, never correctness.
                await light.reconnect()
                result = await finish_stream(light, data, SEG)
                assert result["matches"] == golden[0]
                assert result["energy_uj"] == golden[1]
                heavy.offset = 2 * SEG
                result = await finish_stream(heavy, data, SEG)
                assert result["matches"] == golden[0]

        run(scenario())

    def test_watchdog_sheds_under_resource_pressure(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(
                tmp_path, registry, watchdog_interval=0.05
            ) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "press", "s", PATTERNS
                )
                await client.connect()
                for i in range(2):
                    await client.send(data[i * SEG : (i + 1) * SEG])
                # Trip the descriptor cap: the watchdog must checkpoint
                # and shed without any operator call.
                server.policy = AdmissionPolicy(max_open_fds=1)
                await poll_until(lambda: server.stats.shed >= 1)
                server.policy = ServeConfig().policy()  # re-open the gate
                await client.reconnect()
                result = await finish_stream(client, data, SEG)
                assert result["matches"] == golden[0]
                assert result["energy_uj"] == golden[1]

        run(scenario())


class TestHotReload:
    def test_reload_swaps_at_a_segment_boundary(
        self, registry, data, tmp_path
    ):
        split = 4 * SEG

        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "swap-t", "s", PATTERNS
                )
                await client.connect()
                for i in range(4):
                    await client.send(data[i * SEG : (i + 1) * SEG])
                client.offset = split
                reloaded = await client.reload(ALT_PATTERNS)
                assert reloaded["swapped"] is True
                assert reloaded["generation"] == 2
                result = await finish_stream(client, data, SEG)
                assert client.generation == 2
                assert client.reconnects == 0  # never dropped
                assert server.stats.reloads == 1
                assert server.stats.swaps == 1
                return result

        result = run(scenario())

        # Two-epoch golden: old ruleset over the pre-reload span (the
        # stream continued, so never at-end), new ruleset over the rest.
        from repro.engine.checkpoint import DurableScan
        from repro.simulators.rap import RAPSimulator

        old = entry_for(registry, PATTERNS)
        new = entry_for(registry, ALT_PATTERNS)
        sim = RAPSimulator(registry.hw)
        scan_a = DurableScan(old.ruleset, old.mapping, registry.hw)
        scan_a.feed(data[:split], at_end=False)
        matches_a = sum(len(e) for e in scan_a.match_lists().values())
        energy_a = sim.run_from_activity(
            old.ruleset, scan_a.finish(), old.mapping
        ).energy_uj
        scan_b = DurableScan(new.ruleset, new.mapping, registry.hw)
        scan_b.feed(data[split:], at_end=True)
        matches_b = sum(len(e) for e in scan_b.match_lists().values())
        energy_b = sim.run_from_activity(
            new.ruleset, scan_b.finish(), new.mapping
        ).energy_uj
        assert result["matches"] == matches_a + matches_b
        assert result["energy_uj"] == energy_a + energy_b

    def test_identical_reload_never_rotates(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "noop-t", "s", PATTERNS
                )
                await client.connect()
                for i in range(2):
                    await client.send(data[i * SEG : (i + 1) * SEG])
                client.offset = 2 * SEG
                reloaded = await client.reload(list(PATTERNS))
                assert reloaded["swapped"] is False
                assert reloaded["generation"] == 1
                result = await finish_stream(client, data, SEG)
                assert server.stats.swaps == 0
                assert result["matches"] == golden[0]
                assert result["energy_uj"] == golden[1]

        run(scenario())


class TestDrain:
    def test_drain_checkpoints_and_another_worker_resumes(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "drain-t", "s", PATTERNS
                )
                await client.connect()
                for i in range(3):
                    await client.send(data[i * SEG : (i + 1) * SEG])
                # Sends are fire-and-forget; a ping round-trip forces the
                # handler to consume them (FIFO) before we drain.
                await client.ping()
                await server.drain()
                bye = await asyncio.wait_for(client._control.get(), 10.0)
                assert bye["op"] == "bye"
                assert bye["reason"] == "drain"
                assert server.stats.checkpoint_failures == 0
                await client.close()

            # Another worker: same checkpoint root, a *fresh* registry —
            # the envelope's patterns recompile and the scan restores
            # detached, exactly the crashed-worker handoff.
            async with running_server(
                tmp_path, TenantRegistry()
            ) as second:
                resumer = ScanClient(
                    "127.0.0.1", second.port, "drain-t", "s", PATTERNS
                )
                welcome = await resumer.connect(resume=True)
                assert welcome["resumed"] is True
                assert 0 < welcome["offset"] <= 3 * SEG
                result = await finish_stream(resumer, data, SEG)
                matches, energy = golden
                assert result["matches"] == matches
                assert result["energy_uj"] == energy
                assert second.stats.resumed == 1

        run(scenario())


class TestProtocolRobustness:
    def test_garbage_fails_the_connection_not_the_session(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "garb", "s", PATTERNS
                )
                await client.connect()
                for i in range(2):
                    await client.send(data[i * SEG : (i + 1) * SEG])
                await client.send_garbage()
                error = await asyncio.wait_for(client._control.get(), 10.0)
                assert error["op"] == "error"
                assert error["code"] == protocol.ERR_PROTOCOL
                assert server.stats.protocol_errors == 1
                await client.close()
                await client.reconnect()
                result = await finish_stream(client, data, SEG)
                assert result["matches"] == golden[0]
                assert result["energy_uj"] == golden[1]

        run(scenario())

    def test_unknown_op_fails_the_connection_not_the_session(
        self, registry, data, golden, tmp_path
    ):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "unk", "s", PATTERNS
                )
                await client.connect()
                await client.send(data[:SEG])
                send_frame(client._writer, {"op": "dance"})
                await client._writer.drain()
                error = await asyncio.wait_for(client._control.get(), 10.0)
                assert error["op"] == "error"
                assert error["code"] == protocol.ERR_PROTOCOL
                await client.close()
                await client.reconnect()
                result = await finish_stream(client, data, SEG)
                assert result["matches"] == golden[0]

        run(scenario())

    def test_handshake_must_begin_with_open_or_control(
        self, registry, tmp_path
    ):
        # Pre-open control ops (ping/health) are answered sessionless —
        # the fleet supervisor's probe path — but a session op before
        # open is still a protocol error.
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_frame({"op": "ping"}))
                await writer.drain()
                frame = await read_frame(reader, 10.0)
                assert frame["op"] == "pong"
                writer.write(encode_frame({"op": "health"}))
                await writer.drain()
                frame = await read_frame(reader, 10.0)
                assert frame["op"] == "health_report"
                assert frame["sessions"] == 0
                assert frame["draining"] is False
                writer.write(encode_frame({"op": "data", "b64": ""}))
                await writer.drain()
                frame = await read_frame(reader, 10.0)
                assert frame["op"] == "error"
                assert frame["code"] == protocol.ERR_PROTOCOL
                assert "open" in frame["message"]
                writer.close()

        run(scenario())

    def test_handshake_deadline_expires(self, registry, tmp_path):
        async def scenario():
            async with running_server(
                tmp_path, registry, read_timeout=0.2
            ) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # Say nothing: the server must not hold the socket open.
                frame = await read_frame(reader, 10.0)
                assert frame["op"] == "error"
                assert frame["code"] == protocol.ERR_PROTOCOL
                assert "handshake" in frame["message"]
                writer.close()

        run(scenario())

    def test_open_without_tenant_is_rejected(self, registry, tmp_path):
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_frame({"op": "open", "session": "s"}))
                await writer.drain()
                frame = await read_frame(reader, 10.0)
                assert frame["op"] == "error"
                assert frame["code"] == protocol.ERR_PROTOCOL
                assert "tenant" in frame["message"]
                writer.close()

        run(scenario())


class TestRelease:
    def test_preopen_release_parks_and_forgets(
        self, registry, data, golden, tmp_path
    ):
        # The live-migration source half, driven over the wire: a
        # sessionless control connection sends ``release``; every
        # session parks at its segment boundary, its client gets the
        # structured migrate error, and the worker forgets the session
        # entirely — yet a resume continues it byte-identically from
        # the shared store.
        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(
                    "127.0.0.1", server.port, "t", "rel", PATTERNS
                )
                await client.connect()
                for _ in range(2):
                    segment = data[client.offset : client.offset + SEG]
                    await client.send(segment)
                    client.offset += len(segment)
                await client.ping()  # barrier: both segments are fed

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_frame({"op": "release"}))
                await writer.drain()
                frame = await read_frame(reader, 10.0)
                assert frame["op"] == "released"
                assert frame["count"] == 1
                writer.close()

                assert server.stats.released == 1
                assert not server._sessions  # ownership has left this worker

                # The attached client observed the structured error.
                frame = await asyncio.wait_for(client._control.get(), 10.0)
                assert frame["op"] == "error"
                assert frame["code"] == protocol.ERR_MIGRATE
                assert frame["retry_after"] == RETRY_AFTER_MIGRATE
                assert frame["offset"] == SEG  # pending segment dropped

                # Resume lands on "another worker" (same store suffices).
                welcome = await client.connect(resume=True)
                assert welcome["resumed"] is True
                assert welcome["offset"] == SEG
                client.offset = welcome["offset"]
                result = await finish_stream(client, data, SEG)
                assert (result["matches"], result["energy_uj"]) == golden
                assert server.stats.resumed == 1

        run(scenario())
