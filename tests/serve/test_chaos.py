"""Chaos-soak tests: every connection fault kind, plus a killed worker.

The acceptance bar: a session torn down mid-stream by disconnect,
stall, garbage, reload, admission rejection, or ``SIGKILL`` of the
whole worker resumes to byte-identical matches and energy — proven by
exact (integer and float) comparison against the uninterrupted serial
golden of the same payloads.
"""

import asyncio
import os
import signal
import subprocess
import sys

from repro.engine.faults import FaultPlan
from repro.serve.client import LoadGenerator, ScanClient, serial_totals
from tests.serve.util import PATTERNS, make_data, run, running_server

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestFaultPlanSoak:
    def test_every_conn_fault_kind_is_byte_identical(
        self, registry, tmp_path
    ):
        payloads = [make_data(5000, seed=20 + i) for i in range(3)]
        plan = FaultPlan.parse("disconnect@1;garbage@4;stall@6*0.1;reload@8")

        async def scenario():
            async with running_server(
                tmp_path, registry, checkpoint_interval_bytes=1024
            ) as server:
                generator = LoadGenerator(
                    "127.0.0.1",
                    server.port,
                    PATTERNS,
                    tenant="chaos",
                    sessions=len(payloads),
                    segment_bytes=600,
                    plan=plan,
                )
                return await generator.run(payloads)

        report = run(scenario(), timeout=120.0)
        assert report.failed == 0
        assert report.completed == len(payloads)
        # Each session fires at least one disconnect and one garbage
        # fault; the server closing after a garbage error frame can cost
        # a second reconnect, so bound from below.
        assert report.reconnects >= 2 * len(payloads)
        matches, energy = serial_totals(PATTERNS, payloads, registry)
        assert report.total_matches == matches
        assert report.total_energy_uj == energy
        # Replayed segments never double-emit events.
        assert report.distinct_events == matches


class TestAdmissionUnderLoad:
    def test_rejected_sessions_honor_retry_after_and_complete(
        self, registry, tmp_path
    ):
        payloads = [make_data(3000, seed=40 + i) for i in range(4)]

        async def scenario():
            async with running_server(
                tmp_path, registry, max_sessions=2
            ) as server:
                generator = LoadGenerator(
                    "127.0.0.1",
                    server.port,
                    PATTERNS,
                    tenant="queue",
                    sessions=len(payloads),
                    segment_bytes=600,
                )
                report = await generator.run(payloads)
                assert server.stats.rejected >= 1
                return report

        report = run(scenario(), timeout=120.0)
        assert report.failed == 0
        assert report.completed == len(payloads)
        matches, energy = serial_totals(PATTERNS, payloads, registry)
        assert report.total_matches == matches
        assert report.total_energy_uj == energy


class TestWorkerKill:
    """SIGKILL the serving process mid-stream; a restarted worker on the
    same port and checkpoint root must finish the session bit-identically.
    """

    def _spawn(self, port, ckpt):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                str(port),
                "--checkpoint-dir",
                str(ckpt),
                "--checkpoint-every",
                "512",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO,
        )
        line = proc.stdout.readline()  # blocks until the readiness line
        assert "listening on" in line, line
        return proc, int(line.strip().rsplit(":", 1)[1])

    def test_sigkill_mid_stream_resumes_byte_identically(self, tmp_path):
        data = make_data(12000, seed=33)
        ckpt = tmp_path / "ckpt"

        async def scenario():
            proc, port = await asyncio.to_thread(self._spawn, 0, ckpt)
            try:
                client = ScanClient(
                    "127.0.0.1", port, "kill-t", "s", PATTERNS
                )
                # Stalls pace the stream so the kill lands mid-flight.
                plan = FaultPlan.parse(
                    "stall@2*0.4;stall@6*0.4;stall@10*0.4;stall@14*0.4"
                )
                task = asyncio.create_task(
                    client.run(data, segment_bytes=600, plan=plan)
                )
                while client.offset < len(data) // 3:
                    await asyncio.sleep(0.02)
                proc.kill()  # SIGKILL: the unskippable worker death
                await asyncio.to_thread(proc.wait)
                assert proc.returncode == -signal.SIGKILL
            except BaseException:
                proc.kill()
                raise
            proc2, _ = await asyncio.to_thread(self._spawn, port, ckpt)
            try:
                result = await task
            finally:
                proc2.send_signal(signal.SIGTERM)
                await asyncio.to_thread(proc2.wait)
            assert proc2.returncode == 0  # SIGTERM drained gracefully
            assert client.reconnects >= 1
            return result

        result = run(scenario(), timeout=180.0)
        matches, energy = serial_totals(PATTERNS, [data])
        assert result["matches"] == matches
        assert result["energy_uj"] == energy
