"""Package fixtures: one registry (compile-cache warm) and one golden."""

import pytest

from repro.serve.registry import TenantRegistry
from tests.serve.util import golden_totals, make_data


@pytest.fixture(scope="package")
def registry():
    return TenantRegistry()


@pytest.fixture(scope="package")
def data():
    return make_data()


@pytest.fixture(scope="package")
def golden(registry, data):
    """(matches, energy_uj) of the uninterrupted scan of ``data``."""
    return golden_totals(registry, data)
