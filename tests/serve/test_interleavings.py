"""Adversarial interleavings of the server's supervision paths.

Each test forces two supervision mechanisms to overlap at a chosen
instant — the races a timer-driven soak only hits by luck:

* the idle watchdog sweeping a parked session while a drain is mid
  checkpoint walk;
* a load shed landing while that session's hot reload is still in the
  compile executor;
* a resume takeover arriving while the superseded handler is still
  flushing events.

The bar is the same as everywhere else in this suite: whatever the
interleaving, every session must remain resumable to byte-identical
matches and energy, and no supervision path may crash another's state.
"""

import asyncio

import pytest

from repro.errors import AdmissionError, ServeError
from repro.serve.client import ScanClient
from tests.serve.util import (
    PATTERNS,
    finish_stream,
    poll_until,
    run,
    running_server,
)

HOST = "127.0.0.1"
SEG = 800


async def stream_segments(client, data, count, seg=SEG):
    """Send ``count`` segments from the client's offset, tracking it."""
    for _ in range(count):
        segment = data[client.offset : client.offset + seg]
        await client.send(segment)
        client.offset += len(segment)


class TestIdleEvictionDuringDrain:
    def test_parked_session_evicted_mid_drain(
        self, registry, data, golden, tmp_path
    ):
        """A sweep fires at drain's first await; both sessions survive.

        The drain loop snapshots the session table, then yields while
        notifying attached clients.  If the idle watchdog runs in that
        window it evicts the parked session out from under the drain —
        the drain must tolerate the table shrinking mid-walk, and both
        the evicted and the drained session must resume byte-identically
        on a fresh server over the same checkpoint directory.
        """

        async def scenario():
            async with running_server(
                tmp_path,
                registry,
                idle_timeout=0.05,
                watchdog_interval=60.0,  # sweeps only when the test says
                drain_seconds=2.0,
            ) as server:
                parked = ScanClient(HOST, server.port, "t", "parked", PATTERNS)
                await parked.connect()
                await stream_segments(parked, data, 2)
                bye = await parked.detach()  # parked: in memory, detached
                parked_offset = bye["offset"]
                assert parked_offset == SEG  # pending segment deferred

                live = ScanClient(HOST, server.port, "t", "live", PATTERNS)
                await live.connect()
                await stream_segments(live, data, 1)

                await asyncio.sleep(0.1)  # parked is now idle-expired
                # The sweep task starts at drain's first await — exactly
                # the window where drain already snapshotted the table.
                sweep = asyncio.create_task(server._sweep())
                await server.drain()
                await sweep

                assert server.stats.evicted_idle == 1
                assert server.stats.checkpoint_failures == 0
                assert not server._sessions

            # Both lineages resume on a fresh worker over the same store.
            async with running_server(tmp_path, registry) as server:
                for name, expect_offset in (
                    ("parked", parked_offset),
                    ("live", 0),  # drain persists the durable prefix only
                ):
                    client = ScanClient(
                        HOST, server.port, "t", name, PATTERNS
                    )
                    welcome = await client.connect(resume=True)
                    assert welcome["offset"] == expect_offset
                    result = await finish_stream(client, data)
                    assert (
                        result["matches"],
                        result["energy_uj"],
                    ) == golden
                assert server.stats.resumed == 2

        run(scenario())


class TestShedDuringReload:
    def test_shed_racing_inflight_reload(
        self, registry, data, golden, tmp_path
    ):
        """Shedding a session whose hot reload is still compiling.

        The reload runs in the compile executor; while it is in flight
        the pressure path sheds the same session.  Whichever frame the
        client sees first, the handler must stand down without touching
        the shed checkpoint, and reconnect-resume must finish the stream
        byte-identically.  (The reload uses the same patterns, so the
        golden stays comparable whether or not the swap lands.)
        """

        async def scenario():
            async with running_server(tmp_path, registry) as server:
                client = ScanClient(HOST, server.port, "t", "rs", PATTERNS)
                await client.connect()
                await stream_segments(client, data, 3)

                reload_task = asyncio.create_task(client.reload(PATTERNS))
                await asyncio.sleep(0)  # let the reload reach the executor
                shed_key = await server.shed_lowest("pressure-test")
                assert shed_key == "t/rs"
                assert server.stats.shed == 1

                # The client observes either outcome: the reloaded frame
                # beat the shed, or the shed error displaced it.
                try:
                    await reload_task
                except (
                    AdmissionError,
                    ServeError,
                    ConnectionError,
                    asyncio.TimeoutError,
                ):
                    pass

                await client.reconnect()
                result = await finish_stream(client, data)
                assert (result["matches"], result["energy_uj"]) == golden
                assert client.reconnects == 1
                assert server.stats.checkpoint_failures == 0
                assert server.stats.protocol_errors == 0

        run(scenario())


class TestResumeTakeoverWhileFlushing:
    def test_takeover_while_source_handler_flushing(
        self, registry, data, golden, tmp_path
    ):
        """Client B resumes while client A's handler is mid-flush.

        A streams without reading; B opens the same session with
        ``resume`` while A's events are still being written.  Latest
        wins: the server supersedes A's attachment, parks the held
        session (dropping its pending segment for B to replay), and A's
        handler stands down without parking over B's live attachment.
        """

        async def scenario():
            async with running_server(tmp_path, registry) as server:
                a = ScanClient(HOST, server.port, "t", "tk", PATTERNS)
                await a.connect()
                await stream_segments(a, data, 4)  # last one may be in flight
                # Wait until the server has fed at least one segment, so
                # the takeover happens over a genuinely advanced session
                # (the fourth segment may still be in the read buffer).
                await poll_until(
                    lambda: (s := server._sessions.get("t/tk")) is not None
                    and s.offset >= SEG
                )

                b = ScanClient(HOST, server.port, "t", "tk", PATTERNS)
                welcome = await b.connect(resume=True)
                # The held session was parked in memory, not rebuilt from
                # the store: pending bytes dropped, durable prefix kept.
                assert welcome["resumed"] is False
                assert 0 < welcome["offset"] <= 4 * SEG
                assert b.offset == welcome["offset"]

                # A's transport was closed server-side with no farewell.
                assert await asyncio.wait_for(a._control.get(), 10) is None

                result = await finish_stream(b, data)
                assert (result["matches"], result["energy_uj"]) == golden
                # The superseded handler stood down cleanly: B's run
                # completed the session, nothing re-parked it.
                await poll_until(lambda: not server._attached)
                assert not server._sessions
                assert server.stats.completed == 1
                assert server.stats.checkpoint_failures == 0
                assert server.stats.protocol_errors == 0

        run(scenario())
