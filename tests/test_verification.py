"""Tests for the public consistency-check API."""

import pytest

from repro.compiler import CompilerConfig, compile_ruleset
from repro.verification import (
    Mismatch,
    VerificationReport,
    self_check,
    verify_matches,
)

PATTERNS = ["ab{12}c", "a[bc]de", "^xy*z", "(?i)hello"]
DATA = b"start a" + b"b" * 12 + b"c abde HELLO xyz hello"


@pytest.fixture()
def ruleset():
    return compile_ruleset(PATTERNS, CompilerConfig(bv_depth=4))


class TestSelfCheck:
    def test_clean_run_passes(self, ruleset):
        report = self_check(ruleset, DATA)
        assert report.ok
        assert report.regexes_checked == 4
        assert report.total_matches >= 3
        assert "OK" in report.describe()

    def test_empty_input(self, ruleset):
        report = self_check(ruleset, b"")
        assert report.ok
        assert report.total_matches == 0


class TestVerifyMatches:
    def test_detects_missing_match(self, ruleset):
        from repro.simulators import RAPSimulator

        result = RAPSimulator().run(ruleset, DATA)
        broken = dict(result.matches)
        victim = next(rid for rid, ends in broken.items() if ends)
        broken[victim] = broken[victim][:-1]
        report = verify_matches(ruleset, DATA, broken)
        assert not report.ok
        (mismatch,) = report.mismatches
        assert mismatch.regex_id == victim
        assert mismatch.missing and not mismatch.spurious
        assert "missing" in report.describe()

    def test_detects_spurious_match(self, ruleset):
        from repro.simulators import RAPSimulator

        result = RAPSimulator().run(ruleset, DATA)
        broken = dict(result.matches)
        broken[0] = sorted(set(broken[0]) | {0})
        report = verify_matches(ruleset, DATA, broken)
        assert not report.ok
        assert report.mismatches[0].spurious == (0,)

    def test_mismatch_description(self):
        mismatch = Mismatch(
            regex_id=7, pattern="abc", missing=(3,), spurious=(9,)
        )
        text = mismatch.describe()
        assert "regex 7" in text and "[3]" in text and "[9]" in text

    def test_report_structure(self):
        report = VerificationReport(
            regexes_checked=2, input_length=10, total_matches=5
        )
        assert report.ok


class TestCliVerify:
    def test_scan_verify_flag(self, tmp_path, capsys):
        from repro.cli import main

        rules = tmp_path / "rules.txt"
        rules.write_text("\n".join(PATTERNS) + "\n")
        payload = tmp_path / "input.bin"
        payload.write_bytes(DATA)
        code = main(
            ["scan", "--patterns", str(rules), str(payload), "--verify"]
        )
        assert code == 0
        assert "OK:" in capsys.readouterr().err
