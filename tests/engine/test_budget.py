"""Budget and admission-policy tests: structured pressure reporting.

The service hardening satellites: :meth:`BudgetMonitor.check` returns a
:class:`BudgetPressure` naming the tripped limit (not an opaque
string), an unmeasurable RSS never fails a healthy scan, and the
:class:`AdmissionPolicy` boundaries are exact — admission counts the
would-be next session, shedding only reacts to limits already crossed.
"""

import pytest

from repro.engine import budget
from repro.engine.budget import (
    AdmissionPolicy,
    BudgetMonitor,
    BudgetPressure,
    CircuitBreaker,
    ResourceBudget,
    current_open_fds,
    current_rss_mb,
    validate_degrade,
)


class TestBudgetMonitor:
    def test_no_limits_never_trips(self):
        assert BudgetMonitor(ResourceBudget()).check() is None
        assert not ResourceBudget()
        assert ResourceBudget(max_seconds=1.0)

    def test_wall_clock_boundary_is_strict(self, monkeypatch):
        monitor = BudgetMonitor(ResourceBudget(max_seconds=10.0))
        monkeypatch.setattr(
            BudgetMonitor, "elapsed", property(lambda self: 10.0)
        )
        assert monitor.check() is None  # exactly at the limit: not over
        monkeypatch.setattr(
            BudgetMonitor, "elapsed", property(lambda self: 10.5)
        )
        pressure = monitor.check()
        assert pressure.limit == "max_seconds"
        assert pressure.value == 10.5
        assert pressure.threshold == 10.0
        assert "wall-clock" in str(pressure)

    def test_rss_boundary_is_strict(self, monkeypatch):
        monitor = BudgetMonitor(ResourceBudget(max_rss_mb=100.0))
        monkeypatch.setattr(budget, "current_rss_mb", lambda: 100.0)
        assert monitor.check() is None
        monkeypatch.setattr(budget, "current_rss_mb", lambda: 100.5)
        pressure = monitor.check()
        assert pressure.limit == "max_rss_mb"
        assert pressure.value == 100.5
        assert pressure.threshold == 100.0

    def test_unmeasurable_rss_is_inert(self, monkeypatch):
        # No ``resource`` module: the guard must skip, never trip.
        monitor = BudgetMonitor(ResourceBudget(max_rss_mb=0.001))
        monkeypatch.setattr(budget, "current_rss_mb", lambda: None)
        assert monitor.check() is None

    def test_wall_clock_reported_before_rss(self, monkeypatch):
        monitor = BudgetMonitor(
            ResourceBudget(max_seconds=1.0, max_rss_mb=1.0)
        )
        monkeypatch.setattr(
            BudgetMonitor, "elapsed", property(lambda self: 2.0)
        )
        monkeypatch.setattr(budget, "current_rss_mb", lambda: 2.0)
        assert monitor.check().limit == "max_seconds"

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(max_seconds=0)
        with pytest.raises(ValueError):
            ResourceBudget(max_rss_mb=-1.0)


class TestBudgetPressure:
    def test_stringifies_to_the_message(self):
        pressure = BudgetPressure(
            limit="max_rss_mb", value=2.0, threshold=1.0, message="over"
        )
        assert str(pressure) == "over"
        assert f"{pressure}" == "over"


class TestAdmissionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_sessions=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_rss_mb=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_open_fds=0)
        assert not AdmissionPolicy()
        assert AdmissionPolicy(max_sessions=1)

    def test_admit_counts_the_next_session(self):
        policy = AdmissionPolicy(max_sessions=2)
        assert policy.admit(0) is None
        assert policy.admit(1) is None
        refusal = policy.admit(2)
        assert refusal.limit == "max_sessions"
        assert refusal.value == 3
        assert refusal.threshold == 2

    def test_pressure_only_reacts_to_crossed_limits(self):
        policy = AdmissionPolicy(max_sessions=2)
        assert policy.pressure(2) is None  # at the cap: no shedding
        pressure = policy.pressure(3)
        assert pressure.limit == "max_sessions"
        assert pressure.value == 3

    def test_rss_guard(self, monkeypatch):
        policy = AdmissionPolicy(max_rss_mb=64.0)
        monkeypatch.setattr(budget, "current_rss_mb", lambda: 63.0)
        assert policy.pressure(0) is None
        monkeypatch.setattr(budget, "current_rss_mb", lambda: 65.0)
        pressure = policy.pressure(0)
        assert pressure.limit == "max_rss_mb"
        # Admission passes the same guard through.
        assert policy.admit(0).limit == "max_rss_mb"

    def test_fd_guard(self, monkeypatch):
        policy = AdmissionPolicy(max_open_fds=5)
        monkeypatch.setattr(budget, "current_open_fds", lambda: 5)
        assert policy.pressure(0) is None
        monkeypatch.setattr(budget, "current_open_fds", lambda: 6)
        pressure = policy.pressure(0)
        assert pressure.limit == "max_open_fds"
        assert pressure.value == 6

    def test_unmeasurable_guards_are_inert(self, monkeypatch):
        policy = AdmissionPolicy(max_rss_mb=0.001, max_open_fds=1)
        monkeypatch.setattr(budget, "current_rss_mb", lambda: None)
        monkeypatch.setattr(budget, "current_open_fds", lambda: None)
        assert policy.admit(0) is None
        assert policy.pressure(10) is None


class TestProbes:
    def test_current_rss_mb_is_positive_when_measurable(self):
        rss = current_rss_mb()
        if rss is not None:
            assert rss > 0

    def test_current_open_fds_is_positive_when_measurable(self):
        fds = current_open_fds()
        if fds is not None:
            assert fds > 0


class TestDegradePolicies:
    def test_round_trip(self):
        assert validate_degrade("fail") == "fail"
        assert validate_degrade("shed") == "shed"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown degrade"):
            validate_degrade("panic")


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def _breaker(self, **kwargs) -> tuple[CircuitBreaker, _FakeClock]:
        clock = _FakeClock()
        defaults = dict(
            failure_threshold=3,
            cooldown_seconds=1.0,
            cooldown_cap=4.0,
            clock=clock,
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=5.0, cooldown_cap=1.0)

    def test_trips_at_threshold_not_before(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1

    def test_interleaved_success_never_trips(self):
        # Consecutive-failure semantics: only a tenant failing *every*
        # attempt is pathological enough to trip.
        breaker, _ = self._breaker()
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.trips == 0

    def test_open_refuses_with_remaining_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(0.25)
        admitted, retry_after = breaker.admit()
        assert admitted is False
        assert retry_after == pytest.approx(0.75)

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.admit() == (True, 0.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # A second attempt while the probe is in flight is refused —
        # no reconnect herd through a half-open breaker.
        admitted, retry_after = breaker.admit()
        assert admitted is False
        assert retry_after > 0

    def test_successful_probe_closes_and_resets(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0
        # The cooldown escalation is forgotten too: a later trip waits
        # the base cooldown again.
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.admit() == (True, 0.0)

    def test_failed_probe_doubles_cooldown_up_to_cap(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        expected = [2.0, 4.0, 4.0]  # doubled, then pinned at the cap
        cooldown = 1.0
        for next_cooldown in expected:
            clock.advance(cooldown)
            assert breaker.admit() == (True, 0.0)
            breaker.record_failure()
            assert breaker.state == CircuitBreaker.OPEN
            admitted, retry_after = breaker.admit()
            assert admitted is False
            assert retry_after == pytest.approx(next_cooldown)
            cooldown = next_cooldown
        assert breaker.trips == 4

    def test_abandoned_probe_reopens_without_escalating(self):
        # The probe never reached a worker (none healthy): the tenant
        # was not at fault, so the cooldown must not grow.
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.admit()
        breaker.abandon_probe()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        clock.advance(1.0)
        assert breaker.admit() == (True, 0.0)

    def test_abandon_is_a_noop_outside_half_open(self):
        breaker, _ = self._breaker()
        breaker.abandon_probe()
        assert breaker.state == CircuitBreaker.CLOSED
