"""Durable-scan tests: checkpoint/resume, budgets, graceful degradation.

The acceptance bar: a scan interrupted at an arbitrary point — up to
and including ``SIGKILL`` mid-run — and resumed from its newest intact
checkpoint produces byte-identical matches, energy totals, and metrics
to an uninterrupted run, under every injected fault kind.
"""

import dataclasses
import errno
import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.compiler import compile_ruleset
from repro.core import available_backends, use_backend
from repro.engine import BatchEngine, EngineConfig
from repro.engine.budget import BudgetMonitor, ResourceBudget, validate_degrade
from repro.engine import checkpoint
from repro.engine.checkpoint import (
    KEEP,
    CheckpointStore,
    DurableScan,
    session_dirname,
)
from repro.errors import BudgetExceededError, CheckpointError
from repro.hardware.config import DEFAULT_CONFIG
from repro.simulators.rap import RAPSimulator

# A mixed-mode ruleset: LNFA bins, one NBVA, one NFA.
PATTERNS = ["abc", "a.c", "end$", "hello|world", "ab{10,20}c", "xy*z"]
ALPHABET = b"abcxyz endhello world"


def make_data(length: int = 4000, seed: int = 3) -> bytes:
    rng = random.Random(seed)
    planted = b"startabcab" + b"b" * 14 + b"cend"
    return bytes(rng.choice(ALPHABET) for _ in range(length)) + planted


@pytest.fixture(scope="module")
def ruleset():
    return compile_ruleset(PATTERNS)


@pytest.fixture(scope="module")
def data():
    return make_data()


@pytest.fixture(scope="module")
def reference(ruleset, data):
    return RAPSimulator(DEFAULT_CONFIG).run(ruleset, data)


class TestDurableEqualsSequential:
    @pytest.mark.parametrize("backend", available_backends())
    def test_bit_identical_with_checkpoints(
        self, backend, ruleset, data, reference, tmp_path
    ):
        with use_backend(backend):
            config = EngineConfig(
                checkpoint_dir=str(tmp_path), checkpoint_every_bytes=700
            )
            outcome = BatchEngine(config).durable_scan(ruleset, data)
        assert outcome.result == reference
        assert outcome.ok
        assert outcome.checkpoints_written > 0
        assert outcome.bytes_scanned == len(data)
        # Completion clears the checkpoint directory.
        assert not list(tmp_path.glob("ckpt-*.json"))

    def test_without_checkpoint_dir(self, ruleset, data, reference):
        config = EngineConfig(checkpoint_every_bytes=1000)
        outcome = BatchEngine(config).durable_scan(ruleset, data)
        assert outcome.result == reference
        assert outcome.checkpoints_written == 0

    def test_empty_input(self, ruleset):
        ref = RAPSimulator(DEFAULT_CONFIG).run(ruleset, b"")
        outcome = BatchEngine(EngineConfig()).durable_scan(ruleset, b"")
        assert outcome.result == ref


class TestResume:
    def _interrupt(self, ruleset, data, tmp_path, chunks: int, chunk: int):
        """Run part of a scan and leave its checkpoints behind."""
        sim = RAPSimulator(DEFAULT_CONFIG)
        scan = DurableScan(
            ruleset, sim.build_mapping(ruleset), DEFAULT_CONFIG
        )
        store = CheckpointStore(tmp_path)
        offset = 0
        for _ in range(chunks):
            end = min(offset + chunk, len(data))
            scan.feed(data[offset:end], at_end=(end == len(data)))
            offset = end
            store.write(scan.snapshot(), offset)
        return offset

    @pytest.mark.parametrize("backend", available_backends())
    def test_resume_is_bit_identical(
        self, backend, ruleset, data, reference, tmp_path
    ):
        with use_backend(backend):
            offset = self._interrupt(ruleset, data, tmp_path, chunks=4, chunk=700)
            config = EngineConfig(
                checkpoint_dir=str(tmp_path),
                checkpoint_every_bytes=700,
                resume=True,
            )
            outcome = BatchEngine(config).durable_scan(ruleset, data)
        assert outcome.resumed_from == offset
        assert outcome.result == reference
        assert outcome.bytes_scanned == len(data) - offset

    def test_resume_without_checkpoints_starts_fresh(
        self, ruleset, data, reference, tmp_path
    ):
        config = EngineConfig(
            checkpoint_dir=str(tmp_path),
            checkpoint_every_bytes=1000,
            resume=True,
        )
        outcome = BatchEngine(config).durable_scan(ruleset, data)
        assert outcome.resumed_from is None
        assert outcome.result == reference

    def test_torn_latest_falls_back_to_previous(
        self, ruleset, data, reference, tmp_path
    ):
        self._interrupt(ruleset, data, tmp_path, chunks=3, chunk=500)
        newest = sorted(tmp_path.glob("ckpt-*.json"))[-1]
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 2])
        config = EngineConfig(
            checkpoint_dir=str(tmp_path),
            checkpoint_every_bytes=500,
            resume=True,
        )
        outcome = BatchEngine(config).durable_scan(ruleset, data)
        assert outcome.resumed_from == 1000  # the older intact checkpoint
        assert outcome.result == reference

    def test_fingerprint_mismatch_refuses_resume(self, ruleset, data, tmp_path):
        self._interrupt(ruleset, data, tmp_path, chunks=1, chunk=500)
        other = compile_ruleset(["different", "rules"])
        config = EngineConfig(checkpoint_dir=str(tmp_path), resume=True)
        with pytest.raises(CheckpointError):
            BatchEngine(config).durable_scan(other, data)

    def test_input_mismatch_refuses_resume(self, ruleset, data, tmp_path):
        self._interrupt(ruleset, data, tmp_path, chunks=1, chunk=500)
        config = EngineConfig(checkpoint_dir=str(tmp_path), resume=True)
        with pytest.raises(CheckpointError):
            BatchEngine(config).durable_scan(ruleset, b"Z" * len(data))


class TestInjectedFaults:
    def test_disk_full_counts_failure_and_completes(
        self, ruleset, data, reference, tmp_path
    ):
        config = EngineConfig(
            checkpoint_dir=str(tmp_path),
            checkpoint_every_bytes=1000,
            fault_plan="disk_full@0",
        )
        outcome = BatchEngine(config).durable_scan(ruleset, data)
        assert outcome.result == reference
        assert outcome.checkpoint_failures == 1
        assert outcome.checkpoints_written > 0

    def test_torn_checkpoint_injection_then_resume(
        self, ruleset, data, reference, tmp_path
    ):
        # Tear the second write, kill before the fourth chunk; resume
        # must fall back to the first intact checkpoint... except the
        # torn one was pruned/evicted, so the older one carries it.
        sim = RAPSimulator(DEFAULT_CONFIG)
        scan = DurableScan(ruleset, sim.build_mapping(ruleset), DEFAULT_CONFIG)
        from repro.engine.faults import FaultPlan

        store = CheckpointStore(tmp_path, FaultPlan.parse("torn_checkpoint@1"))
        offset = 0
        for _ in range(2):
            end = offset + 800
            scan.feed(data[offset:end], at_end=False)
            offset = end
            store.write(scan.snapshot(), offset)
        config = EngineConfig(
            checkpoint_dir=str(tmp_path),
            checkpoint_every_bytes=800,
            resume=True,
        )
        outcome = BatchEngine(config).durable_scan(ruleset, data)
        assert outcome.resumed_from == 800  # write 1 (offset 1600) was torn
        assert outcome.result == reference

    def test_kill_directive_sigkills_subprocess(self, tmp_path):
        """kill@N really delivers SIGKILL (run in a scratch process)."""
        code = (
            "from repro.engine import faults\n"
            "plan = faults.FaultPlan.parse('kill@1')\n"
            "faults.inject_chunk(0, plan)\n"
            "print('survived chunk 0', flush=True)\n"
            "faults.inject_chunk(1, plan)\n"
            "print('unreachable', flush=True)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert proc.returncode == -signal.SIGKILL
        assert "survived chunk 0" in proc.stdout
        assert "unreachable" not in proc.stdout


class TestKillResumeEndToEnd:
    def test_sigkill_mid_scan_then_resume_matches_golden(self, tmp_path):
        """The CI durability leg, in-tree: golden run, SIGKILLed run,
        resumed run; stdout (matches) must be byte-identical."""
        repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        rules = tmp_path / "rules.txt"
        rules.write_text("\n".join(PATTERNS) + "\n")
        stream = tmp_path / "input.bin"
        stream.write_bytes(make_data(6000))
        ckpts = tmp_path / "ckpts"
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("RAP_FAULT_PLAN", None)
        base = [
            sys.executable,
            "-m",
            "repro",
            "scan",
            "--patterns",
            str(rules),
            str(stream),
            "--no-cache",
        ]
        durable = [
            *base,
            "--checkpoint-dir",
            str(ckpts),
            "--checkpoint-every",
            "1000",
        ]
        golden = subprocess.run(
            base, capture_output=True, text=True, env=env, cwd=repo
        )
        assert golden.returncode == 0, golden.stderr
        killed = subprocess.run(
            durable,
            capture_output=True,
            text=True,
            env=dict(env, RAP_FAULT_PLAN="kill@2"),
            cwd=repo,
        )
        assert killed.returncode in (-signal.SIGKILL, 137)
        assert list(ckpts.glob("ckpt-*.json")), "no checkpoint survived"
        resumed = subprocess.run(
            [*durable, "--resume"],
            capture_output=True,
            text=True,
            env=dict(env, RAP_FAULT_PLAN=""),
            cwd=repo,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == golden.stdout
        assert "resumed from checkpoint" in resumed.stderr


class TestBudgets:
    def test_fail_policy_raises(self, ruleset, data):
        config = EngineConfig(
            checkpoint_every_bytes=500, max_seconds=1e-9, degrade="fail"
        )
        with pytest.raises(BudgetExceededError):
            BatchEngine(config).durable_scan(ruleset, data)

    def test_shed_policy_quarantines_and_finishes(self, ruleset, data):
        config = EngineConfig(
            checkpoint_every_bytes=200, max_seconds=1e-9, degrade="shed"
        )
        outcome = BatchEngine(config).durable_scan(ruleset, data)
        assert not outcome.ok
        assert len(outcome.quarantine) > 0
        entry = outcome.quarantine.entries[0]
        assert entry.phase == "degrade"
        assert entry.error_type == "BudgetExceededError"
        assert entry.pattern in PATTERNS

    def test_shed_respects_weights(self, ruleset, data):
        # Give one pattern a tiny weight: it must shed first.
        weights = {r.regex_id: 10.0 for r in ruleset}
        victim = ruleset.regexes[0]
        weights[victim.regex_id] = 0.1
        config = EngineConfig(
            checkpoint_every_bytes=2000, max_seconds=1e-9, degrade="shed"
        )
        outcome = BatchEngine(config).durable_scan(
            ruleset, data, weights=weights
        )
        shed_patterns = [e.pattern for e in outcome.quarantine.entries]
        assert victim.pattern in shed_patterns

    def test_budget_monitor_wall_clock(self):
        monitor = BudgetMonitor(ResourceBudget(max_seconds=0.01))
        assert monitor.check() is None or monitor.elapsed > 0.01
        time.sleep(0.02)
        pressure = monitor.check()
        assert "wall-clock" in str(pressure)
        assert pressure.limit == "max_seconds"

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(max_seconds=0)
        with pytest.raises(ValueError):
            ResourceBudget(max_rss_mb=-1)
        assert not ResourceBudget()
        assert ResourceBudget(max_seconds=1)
        validate_degrade("shed")
        with pytest.raises(ValueError):
            validate_degrade("panic")

    def test_engine_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(degrade="panic")
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_every_bytes=0)


class TestCheckpointStore:
    def test_prunes_to_keep(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for i in range(5):
            store.write({"i": i}, offset=i * 100)
        paths = sorted(tmp_path.glob("ckpt-*.json"))
        assert len(paths) == KEEP
        assert store.load_latest() == {"i": 4}

    def test_corrupt_entry_discarded(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write({"i": 0}, offset=100)
        store.write({"i": 1}, offset=200)
        newest = sorted(tmp_path.glob("ckpt-*.json"))[-1]
        doc = json.loads(newest.read_text())
        doc["payload"] = doc["payload"].replace("1", "2")
        newest.write_text(json.dumps(doc))  # checksum now wrong
        assert store.load_latest() == {"i": 0}
        assert store.discarded == 1
        assert not newest.exists()

    def test_all_corrupt_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write({"i": 0}, offset=100)
        for path in tmp_path.glob("ckpt-*.json"):
            path.write_text("garbage")
        assert store.load_latest() is None

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write({"i": 0}, offset=100)
        store.clear()
        assert store.load_latest() is None

    def test_empty_dir_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "missing").load_latest() is None


class TestDurableScanState:
    def test_snapshot_is_deterministic_json(self, ruleset, data):
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        one = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        two = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        for scan in (one, two):
            scan.feed(data[:1000], at_end=False)
        dump = lambda s: json.dumps(s.snapshot(), sort_keys=True)  # noqa: E731
        assert dump(one) == dump(two)

    def test_restore_roundtrips_shed_state(self, ruleset, data):
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        scan = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        scan.feed(data[:1000], at_end=False)
        scan.shed(0.5, "test pressure")
        live_before = scan.live_units
        doc = json.loads(json.dumps(scan.snapshot()))
        restored = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        restored.restore(doc, data)
        assert restored.live_units == live_before
        assert len(restored.quarantine_entries) == len(scan.quarantine_entries)
        restored.feed(data[1000:], at_end=True)
        scan.feed(data[1000:], at_end=True)
        assert dataclasses.asdict(
            RAPSimulator(DEFAULT_CONFIG).run_from_activity(
                ruleset, restored.finish(), mapping
            ).metrics
        ) == dataclasses.asdict(
            RAPSimulator(DEFAULT_CONFIG).run_from_activity(
                ruleset, scan.finish(), mapping
            ).metrics
        )

    def test_shed_everything_freezes_scan(self, ruleset, data):
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        scan = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        scan.feed(data[:500], at_end=False)
        while scan.live_units:
            scan.shed(1.0, "pressure")
        activity = scan.finish()
        assert activity.input_symbols == 500


class TestSessionNamespacing:
    """Satellite: a shared checkpoint root is multi-writer safe."""

    def test_session_dirname_passthrough(self):
        assert session_dirname("tenant-1.s_2") == "tenant-1.s_2"

    def test_session_dirname_percent_encodes(self):
        assert session_dirname("t/s 1") == "t%2fs%201"
        assert "/" not in session_dirname("a/../../b")

    def test_session_dirname_truncates_without_collisions(self):
        a = session_dirname("x" * 100 + "a")
        b = session_dirname("x" * 100 + "b")
        assert a != b
        assert len(a) <= 64 and len(b) <= 64

    def test_multi_writer_prune_isolation(self, tmp_path):
        """Regression: two sessions sharing one root must never prune
        each other.  Un-namespaced, the low-offset writer's newest entry
        sorts below the neighbour's and KEEP-pruning deletes it right
        after commit."""
        low = CheckpointStore(tmp_path, session="low")
        high = CheckpointStore(tmp_path, session="high")
        for offset in (10_000, 20_000, 30_000):
            high.write({"who": "high", "offset": offset}, offset)
        low.write({"who": "low", "offset": 5}, 5)
        high.write({"who": "high", "offset": 40_000}, 40_000)
        assert low.load_latest() == {"who": "low", "offset": 5}
        assert high.load_latest() == {"who": "high", "offset": 40_000}

    def test_same_session_shares_one_namespace(self, tmp_path):
        writer = CheckpointStore(tmp_path, session="t/s")
        reader = CheckpointStore(tmp_path, session="t/s")
        writer.write({"n": 1}, 10)
        assert reader.load_latest() == {"n": 1}
        assert reader.root == writer.root


class TestStoreRecovery:
    """Satellite: load_latest with nothing intact left to load."""

    def test_only_corrupt_checkpoints_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write({"n": 1}, 100)
        store.write({"n": 2}, 200)
        stray = tmp_path / "NOTES.txt"
        stray.write_text("operator breadcrumb, not a checkpoint")
        for path in sorted(tmp_path.glob("ckpt-*.json")):
            path.write_text("{ torn")
        assert store.load_latest() is None
        assert store.discarded == 2
        # Corrupt entries are unlinked; unrelated files are untouched.
        assert list(tmp_path.glob("ckpt-*.json")) == []
        assert stray.read_text() == "operator breadcrumb, not a checkpoint"

    def test_stray_json_is_not_parsed_as_a_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write({"n": 1}, 100)
        (tmp_path / "summary.json").write_text("not a checkpoint")
        assert store.load_latest() == {"n": 1}
        assert store.discarded == 0


class TestStoreLocking:
    """Satellite: the write+prune critical section is serialized."""

    def test_live_holder_times_out_the_writer(self, tmp_path, monkeypatch):
        monkeypatch.setattr(checkpoint, "LOCK_TIMEOUT_SECONDS", 0.1)
        store = CheckpointStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        lock = store.root / ".lock"
        lock.write_text(str(os.getpid()))  # this process: provably alive
        with pytest.raises(OSError) as info:
            store.write({"n": 1}, 1)
        assert info.value.errno == errno.EWOULDBLOCK
        lock.unlink()
        store.write({"n": 1}, 1)  # released: writes proceed again
        assert store.load_latest() == {"n": 1}

    def test_dead_holder_lock_breaks_immediately(self, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()  # reaped: the pid is provably dead
        store = CheckpointStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / ".lock").write_text(str(probe.pid))
        store.write({"n": 2}, 2)  # no timeout wait needed
        assert store.lock_breaks == 1
        assert store.load_latest() == {"n": 2}

    def test_pidless_lock_only_breaks_when_stale(self, tmp_path, monkeypatch):
        monkeypatch.setattr(checkpoint, "LOCK_TIMEOUT_SECONDS", 0.1)
        store = CheckpointStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        lock = store.root / ".lock"
        # A holder caught between O_EXCL-create and writing its pid must
        # not be broken while fresh...
        lock.write_text("")
        with pytest.raises(OSError):
            store.write({"n": 1}, 1)
        assert store.lock_breaks == 0
        # ...but once clearly stale it must not wedge the store forever.
        old = time.time() - checkpoint.LOCK_STALE_SECONDS - 1
        os.utime(lock, (old, old))
        store.write({"n": 1}, 1)
        assert store.lock_breaks == 1
        assert store.load_latest() == {"n": 1}

    def test_clear_survives_a_wedged_lock(self, tmp_path, monkeypatch):
        monkeypatch.setattr(checkpoint, "LOCK_TIMEOUT_SECONDS", 0.1)
        store = CheckpointStore(tmp_path)
        store.write({"n": 1}, 1)
        (store.root / ".lock").write_text(str(os.getpid()))
        store.clear()  # must not raise: completion beats the lock
        assert store.load_latest() is None

    def test_stamp_carries_pid_and_start_time(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        with store._exclusive():
            stamp = json.loads((store.root / ".lock").read_text())
        assert stamp["pid"] == os.getpid()
        if checkpoint.process_start_time(os.getpid()) is not None:
            assert stamp["start"] == checkpoint.process_start_time(
                os.getpid()
            )
        assert not (store.root / ".lock").exists()  # released on exit

    def test_pid_reuse_impostor_breaks_immediately(self, tmp_path):
        # The fleet scenario: a SIGKILLed worker's lock survives, the
        # pid space wraps, and an unrelated *live* process now wears the
        # dead holder's number.  A bare pid would wedge the store for
        # LOCK_STALE_SECONDS; the start-time stamp proves the real
        # holder is gone.
        if checkpoint.process_start_time(os.getpid()) is None:
            pytest.skip("no /proc: start-time stamping is inert here")
        store = CheckpointStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / ".lock").write_text(
            json.dumps({"pid": os.getpid(), "start": "1"})  # boot-time pid
        )
        store.write({"n": 3}, 3)  # no timeout wait needed
        assert store.lock_breaks == 1
        assert store.load_latest() == {"n": 3}

    def test_matching_start_stamp_is_an_honored_live_holder(
        self, tmp_path, monkeypatch
    ):
        if checkpoint.process_start_time(os.getpid()) is None:
            pytest.skip("no /proc: start-time stamping is inert here")
        monkeypatch.setattr(checkpoint, "LOCK_TIMEOUT_SECONDS", 0.1)
        store = CheckpointStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / ".lock").write_text(
            json.dumps(
                {
                    "pid": os.getpid(),
                    "start": checkpoint.process_start_time(os.getpid()),
                }
            )
        )
        with pytest.raises(OSError) as info:
            store.write({"n": 1}, 1)
        assert info.value.errno == errno.EWOULDBLOCK
        assert store.lock_breaks == 0

    def test_dead_holder_json_stamp_breaks_immediately(self, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()  # reaped: the pid is provably dead
        store = CheckpointStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / ".lock").write_text(
            json.dumps({"pid": probe.pid, "start": "12345"})
        )
        store.write({"n": 4}, 4)
        assert store.lock_breaks == 1


class TestDetachedResume:
    """Satellite: resuming without the consumed prefix bytes (the
    streaming service's cross-worker handoff)."""

    def test_detached_continuation_is_bit_identical(
        self, ruleset, data, reference
    ):
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        first = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        split = len(data) // 2
        first.feed(data[:split], at_end=False)
        doc = json.loads(json.dumps(first.snapshot()))
        resumed = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        resumed.restore_detached(doc)
        assert resumed.offset == split
        resumed.feed(data[split:], at_end=True)
        result = sim.run_from_activity(ruleset, resumed.finish(), mapping)
        assert dataclasses.asdict(result.metrics) == dataclasses.asdict(
            reference.metrics
        )

    def test_restore_refuses_detached_documents(self, ruleset, data):
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        scan = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        scan.feed(data[:1000], at_end=False)
        detached = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        detached.restore_detached(scan.snapshot())
        doc = detached.snapshot()
        assert doc["detached"] is True
        fresh = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        with pytest.raises(CheckpointError, match="detached"):
            fresh.restore(doc, data)
        # The detached lineage itself keeps resuming fine.
        again = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        again.restore_detached(doc)
        assert again.offset == 1000

    def test_detached_chain_digest_binds_the_byte_sequence(
        self, ruleset, data
    ):
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset)
        scan = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
        scan.feed(data[:1000], at_end=False)
        doc = scan.snapshot()

        def continue_with(segment):
            resumed = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
            resumed.restore_detached(doc)
            resumed.feed(segment, at_end=False)
            return resumed.snapshot()["input_sha"]

        same = continue_with(data[1000:2000])
        identical = continue_with(data[1000:2000])
        diverged = continue_with(b"x" * 1000)
        assert same == identical
        assert same != diverged
