"""Input-parallel scanning is bit-identical to serial, at every level.

The assertions compare whole ``RunActivity`` / ``SimulationResult``
objects — matches, cycle counts, per-tile wake-ups, the energy ledger —
between the serial fused path and the SFA-stitched split path, across
every unit mechanism (lane bins, bounded NFA, cyclic frontier NFA,
serial-fallback NBVA) and across the seams the stitching must survive:
chunks shorter than the longest pattern, patterns straddling a seam, a
seam inside a literal-prefilter cold skip, and degenerate plans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.compiler import compile_ruleset
from repro.core import available_backends, resolve_backend, use_backend
from repro.engine import BatchEngine, BatchTask, EngineConfig, INPUT_JOBS_ENV
from repro.engine.checkpoint import CheckpointStore, DurableScan
from repro.engine.split import (
    BOUNDED,
    FRONTIER,
    STATEMAP,
    SplitCompilation,
    split_collect,
)
from repro.errors import CheckpointError
from repro.hardware.config import DEFAULT_CONFIG
from repro.simulators.rap import RAPSimulator
from repro.workloads.inputs import generate_input

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="NumPy backend not available",
)

# Lanes + bounded/statemap DFA + bounded NFA + cyclic (frontier) NFA +
# NBVA counters: one ruleset that exercises every split mechanism at
# once.  The dense dot patterns stay NFA under the cost model; the
# low-activity optional/star patterns take the DFA tier.
PATTERNS = [
    "abcdef",
    "hello",
    "ab?c?d",
    "a(bc)*d",
    "k{20,400}m",
    "(?:a.|.b){2}x",
    "a(?:b.*|c)d",
]


@pytest.fixture(scope="module")
def ruleset():
    return compile_ruleset(PATTERNS)


@pytest.fixture(scope="module")
def mapped(ruleset):
    sim = RAPSimulator(DEFAULT_CONFIG)
    return sim, sim.build_mapping(ruleset, bin_size=None)


def _split(ruleset, mapping, data, *, input_jobs, min_chunk_bytes=64, jobs=1):
    return split_collect(
        ruleset,
        mapping,
        DEFAULT_CONFIG,
        data,
        bin_size=None,
        backend=resolve_backend(),
        input_jobs=input_jobs,
        jobs=jobs,
        min_chunk_bytes=min_chunk_bytes,
    )


class TestSplitCollect:
    def test_classifies_every_mechanism(self, ruleset, mapped):
        _, mapping = mapped
        with use_backend("fused"):
            comp = SplitCompilation(ruleset, mapping, DEFAULT_CONFIG)
        assert comp.bins  # lane-packed LNFA units
        assert BOUNDED in comp.unit_kind  # (?:a.|.b){2}x is acyclic NFA
        assert FRONTIER in comp.unit_kind  # a(?:b.*|c)d is cyclic NFA
        assert BOUNDED in comp.dfa_kind  # ab?c?d is an acyclic DFA
        assert STATEMAP in comp.dfa_kind  # a(bc)*d is a cyclic DFA
        assert comp.nbva_rep  # k{20,400}m carries counters
        assert comp.warm >= max(len(p) for p in ["abcdef", "hello"])

    @pytest.mark.parametrize("input_jobs", [2, 3, 4, 7])
    def test_bit_identical_to_serial_fused(self, ruleset, mapped, input_jobs):
        sim, mapping = mapped
        data = generate_input("text", 16000, seed=3, patterns=PATTERNS)
        with use_backend("fused"):
            serial = sim.collect_activities(ruleset, data, mapping)
            got = _split(ruleset, mapping, data, input_jobs=input_jobs)
        assert got is not None
        assert got.regex == serial.regex
        assert got.lnfa_bins == serial.lnfa_bins
        assert got.input_symbols == serial.input_symbols
        assert sim.run_from_activity(
            ruleset, got, mapping
        ) == sim.run_from_activity(ruleset, serial, mapping)

    @settings(max_examples=10, deadline=None)
    @given(
        length=st.integers(200, 3000),
        input_jobs=st.integers(2, 6),
        min_chunk=st.sampled_from([1, 17, 256]),
        seed=st.integers(0, 5),
    )
    def test_arbitrary_split_points_compose_exactly(
        self, ruleset, mapped, length, input_jobs, min_chunk, seed
    ):
        # min_chunk=1 drives seams to arbitrary byte positions, so the
        # drawn (length, input_jobs, min_chunk) triple explores the
        # whole plan space the composition law must hold over.
        sim, mapping = mapped
        data = generate_input(
            "text", length, seed=seed, patterns=PATTERNS, plant_every=97
        )
        with use_backend("fused"):
            serial = sim.collect_activities(ruleset, data, mapping)
            got = _split(
                ruleset,
                mapping,
                data,
                input_jobs=input_jobs,
                min_chunk_bytes=min_chunk,
            )
        if got is None:  # plan degenerated to one chunk: fallback is fine
            return
        assert got.regex == serial.regex
        assert got.lnfa_bins == serial.lnfa_bins


class TestSeams:
    def _assert_identical(self, patterns, data, *, input_jobs, min_chunk):
        ruleset = compile_ruleset(patterns)
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset, bin_size=None)
        with use_backend("fused"):
            serial = sim.collect_activities(ruleset, data, mapping)
            got = _split(
                ruleset,
                mapping,
                data,
                input_jobs=input_jobs,
                min_chunk_bytes=min_chunk,
            )
        assert got is not None
        assert got.regex == serial.regex
        assert got.lnfa_bins == serial.lnfa_bins

    def test_chunk_shorter_than_longest_pattern(self):
        # Owned spans of ~4 bytes against a 12-byte pattern: warm_start
        # clamps to 0 and chunks replay from the true stream start.
        pattern = "abcdefghijkl"
        data = (b"xx" + pattern.encode() + b"yy") * 3
        self._assert_identical(
            [pattern, "hello"], data, input_jobs=8, min_chunk=1
        )

    def test_pattern_straddles_a_seam(self):
        from repro.engine.partition import plan_chunks

        patterns = ["needle", "a(bc)*d"]
        ruleset = compile_ruleset(patterns)
        sim = RAPSimulator(DEFAULT_CONFIG)
        mapping = sim.build_mapping(ruleset, bin_size=None)
        with use_backend("fused"):
            comp = SplitCompilation(ruleset, mapping, DEFAULT_CONFIG)
        n = 4096
        chunks = plan_chunks(n, 2, comp.warm, min_owned=64)
        seam = chunks[1].start
        base = bytearray(b"." * n)
        base[seam - 3 : seam + 3] = b"needle"  # straddles the seam
        base[seam - 1 : seam + 5] = b"abcbcd"  # cyclic match across it
        self._assert_identical(
            patterns, bytes(base), input_jobs=2, min_chunk=64
        )

    def test_seam_inside_prefilter_cold_skip(self):
        # A long run of bytes no pattern can start in: the literal
        # prefilter skips it, and the seam lands mid-skip.
        patterns = ["needle", "hay"]
        cold = b"\x00" * 5000
        data = b"needle" + cold + b"hay" + cold + b"needle"
        self._assert_identical(patterns, data, input_jobs=2, min_chunk=64)

    def test_more_jobs_than_bytes_falls_back(self, ruleset, mapped):
        sim, mapping = mapped
        data = b"abcdefgh"
        with use_backend("fused"):
            assert _split(ruleset, mapping, data, input_jobs=64) is None
            # the engine-level scan still answers, identically
            serial = BatchEngine(EngineConfig(jobs=1)).scan(ruleset, data)
            split = BatchEngine(
                EngineConfig(jobs=1, input_jobs=64)
            ).scan(ruleset, data)
        assert split == serial


class TestEngineWiring:
    def test_scan_is_bit_identical(self, ruleset):
        data = generate_input("text", 20000, seed=9, patterns=PATTERNS)
        serial = BatchEngine(
            EngineConfig(jobs=1, backend="fused")
        ).scan(ruleset, data)
        for input_jobs in (2, 4):
            split = BatchEngine(
                EngineConfig(
                    jobs=1,
                    input_jobs=input_jobs,
                    backend="fused",
                    min_chunk_bytes=512,
                )
            ).scan(ruleset, data)
            assert split == serial

    def test_env_var_enables_input_parallelism(self, ruleset, monkeypatch):
        data = generate_input("text", 12000, seed=1, patterns=PATTERNS)
        serial = BatchEngine(
            EngineConfig(jobs=1, backend="fused")
        ).scan(ruleset, data)
        monkeypatch.setenv(INPUT_JOBS_ENV, "3")
        split = BatchEngine(
            EngineConfig(jobs=1, backend="fused", min_chunk_bytes=512)
        ).scan(ruleset, data)
        assert split == serial

    def test_env_var_rejects_garbage(self, ruleset, monkeypatch):
        monkeypatch.setenv(INPUT_JOBS_ENV, "lots")
        with pytest.raises(ValueError, match=INPUT_JOBS_ENV):
            BatchEngine(EngineConfig(jobs=1)).scan(ruleset, b"abc")

    def test_config_overrides_env(self, ruleset, monkeypatch):
        monkeypatch.setenv(INPUT_JOBS_ENV, "lots")  # never consulted
        engine = BatchEngine(EngineConfig(jobs=1, input_jobs=2))
        assert engine._input_jobs() == 2

    def test_non_fused_backend_scans_serially(self, ruleset):
        data = generate_input("text", 6000, seed=2, patterns=PATTERNS)
        serial = BatchEngine(
            EngineConfig(jobs=1, backend="python")
        ).scan(ruleset, data)
        split = BatchEngine(
            EngineConfig(jobs=1, input_jobs=4, backend="python")
        ).scan(ruleset, data)
        assert split == serial

    def test_run_batch_input_parallel(self, ruleset):
        data = generate_input("text", 10000, seed=4, patterns=PATTERNS)
        tasks = [
            BatchTask(data=data, ruleset=ruleset),
            BatchTask(data=data[:3000], ruleset=ruleset),
        ]
        serial = BatchEngine(
            EngineConfig(jobs=1, backend="fused")
        ).run_batch(tasks)
        split = BatchEngine(
            EngineConfig(
                jobs=1, input_jobs=2, backend="fused", min_chunk_bytes=256
            )
        ).run_batch(tasks)
        assert split == serial


class TestDurableSeams:
    def test_checkpoint_at_a_seam_resumes_identically(self, ruleset, tmp_path):
        data = generate_input("text", 24000, seed=6, patterns=PATTERNS)
        with use_backend("fused"):
            sim = RAPSimulator(DEFAULT_CONFIG)
            mapping = sim.build_mapping(ruleset, bin_size=None)
            plain = BatchEngine(EngineConfig(jobs=1)).scan(ruleset, data)

            scan = DurableScan(
                ruleset,
                mapping,
                DEFAULT_CONFIG,
                input_jobs=2,
                min_chunk_bytes=512,
            )
            store = CheckpointStore(tmp_path)
            # Feed to exactly half the stream: with input_jobs=2 the
            # feeder's seam falls inside this segment, so the snapshot
            # is taken at a state the stitching produced.
            scan.feed(data[: len(data) // 2], at_end=False)
            store.write(scan.snapshot(), scan.offset)

            resumed = DurableScan(
                ruleset,
                mapping,
                DEFAULT_CONFIG,
                input_jobs=2,
                min_chunk_bytes=512,
            )
            resumed.restore(store.load_latest(), data)
            assert resumed.offset == len(data) // 2
            resumed.feed(data[resumed.offset :], at_end=True)
            got = sim.run_from_activity(ruleset, resumed.finish(), mapping)
        assert got == plain

    def test_durable_scan_engine_path(self, ruleset, tmp_path):
        data = generate_input("text", 24000, seed=8, patterns=PATTERNS)
        plain = BatchEngine(
            EngineConfig(jobs=1, backend="fused")
        ).scan(ruleset, data)
        outcome = BatchEngine(
            EngineConfig(
                jobs=1,
                input_jobs=2,
                backend="fused",
                min_chunk_bytes=512,
                checkpoint_dir=str(tmp_path),
                checkpoint_every_bytes=4096,
            )
        ).durable_scan(ruleset, data)
        assert outcome.result == plain

    def test_fingerprint_binds_split_layout(
        self, ruleset, mapped, tmp_path, monkeypatch
    ):
        _, mapping = mapped
        # This test is about *explicit* configurations; DurableScan also
        # honors RAP_INPUT_JOBS when no value is given (so CI's env-wide
        # split runs keep writer and resumer consistent), which would
        # otherwise turn the no-argument scans below into split ones.
        monkeypatch.delenv(INPUT_JOBS_ENV, raising=False)
        with use_backend("fused"):
            serial = DurableScan(ruleset, mapping, DEFAULT_CONFIG)
            default = DurableScan(ruleset, mapping, DEFAULT_CONFIG, input_jobs=1)
            split = DurableScan(
                ruleset, mapping, DEFAULT_CONFIG, input_jobs=2
            )
            # input_jobs=1 is the serial layout: fingerprints (and thus
            # old checkpoints) stay valid.  A split layout is a
            # different fingerprint, so resuming across parallelism
            # levels is an explicit rebind.
            assert default.fingerprint == serial.fingerprint
            assert split.fingerprint != serial.fingerprint

            data = generate_input("text", 8000, seed=5, patterns=PATTERNS)
            split.feed(data[:4000], at_end=False)
            store = CheckpointStore(tmp_path)
            store.write(split.snapshot(), split.offset)
            with pytest.raises(CheckpointError):
                serial.restore(store.load_latest(), data)
