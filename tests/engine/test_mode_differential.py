"""Forced-mode differential suite: ``--mode dfa`` == ``--mode nfa``.

The DFA tier's contract is bit-identity: a regex forced onto the
subset-constructed table must produce the same matches, the same cycle
and active-state counts, the same energy ledger, and the same durable
checkpoints as the same regex on the NFA mask stack.  The hypothesis
suites drive random regexes and inputs through both modes on every
backend; the deterministic tests target the seams where the fused
executor could diverge — literal-prefilter cold skips and
checkpoint-at-a-seam resume under ``--input-jobs 2``.
"""

import dataclasses
import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.automata.reference import ReferenceMatcher
from repro.compiler import CompilerConfig, compile_ruleset
from repro.compiler.program import CompiledMode
from repro.core import available_backends, use_backend
from repro.engine import BatchEngine, EngineConfig
from repro.engine.checkpoint import CheckpointStore, DurableScan
from repro.hardware.config import DEFAULT_CONFIG
from repro.simulators.rap import RAPSimulator

from repro.regex import ast
from repro.regex.charclass import CharClass

from tests.helpers import inputs, regex_trees

NUMPY = "numpy" in available_backends()


def scannable_trees(max_leaves: int = 6):
    """Random trees prefixed with a literal: never nullable, so almost
    every draw is DFA-eligible (only subset blowups get assumed away)."""
    return regex_trees(max_leaves=max_leaves).map(
        lambda t: ast.concat(ast.lit(CharClass.of("a")), t)
    )

needs_numpy = pytest.mark.skipif(not NUMPY, reason="NumPy backend not available")


def _forced(patterns, mode: CompiledMode):
    ruleset = compile_ruleset(patterns, CompilerConfig(forced_mode=mode))
    assert not ruleset.rejected, ruleset.rejected
    return ruleset


def _assert_results_identical(got, want):
    assert got.matches == want.matches
    assert got.energy_breakdown_pj == want.energy_breakdown_pj
    assert dataclasses.asdict(got.metrics) == dataclasses.asdict(want.metrics)


def _dfa_equals_nfa(patterns, data: bytes, backend: str):
    nfa_rs = _forced(patterns, CompiledMode.NFA)
    dfa_rs = _forced(patterns, CompiledMode.DFA)
    with use_backend(backend):
        sim = RAPSimulator(DEFAULT_CONFIG)
        want = sim.run(nfa_rs, data)
        got = sim.run(dfa_rs, data)
    _assert_results_identical(got, want)
    return want


def _dfa_eligible(pattern: str) -> bool:
    ruleset = compile_ruleset(
        [pattern], CompilerConfig(forced_mode=CompiledMode.DFA)
    )
    return not ruleset.rejected


class TestRandomRegexes:
    @settings(max_examples=60, deadline=None)
    @given(tree=scannable_trees(max_leaves=6), data=inputs(max_size=48))
    def test_python_backend(self, tree, data):
        pattern = tree.to_pattern()
        assume(_dfa_eligible(pattern))
        result = _dfa_equals_nfa([pattern], data, "python")
        # Both modes also agree with the reference oracle.
        assert result.matches[0] == ReferenceMatcher(tree).find_matches(data)

    @needs_numpy
    @settings(max_examples=60, deadline=None)
    @given(tree=scannable_trees(max_leaves=6), data=inputs(max_size=48))
    def test_fused_backend(self, tree, data):
        pattern = tree.to_pattern()
        assume(_dfa_eligible(pattern))
        _dfa_equals_nfa([pattern], data, "fused")

    @needs_numpy
    @settings(max_examples=30, deadline=None)
    @given(
        trees=st.lists(scannable_trees(max_leaves=5), min_size=2, max_size=6),
        data=inputs(max_size=64),
    )
    def test_fused_multi_regex_rulesets(self, trees, data):
        # Drop ineligible draws instead of rejecting the whole example:
        # nullable trees are common enough to starve an assume(all(...)).
        patterns = [
            p for p in (t.to_pattern() for t in trees) if _dfa_eligible(p)
        ]
        assume(len(patterns) >= 2)
        _dfa_equals_nfa(patterns, data, "fused")


# Low-activity keywordish patterns (all DFA-eligible, prefilterable) for
# the seam tests; the cold filler byte is outside every hot class.
SEAM_PATTERNS = ["needle", "marker", "ab*c", "foo[0-9]*bar"]


def _seam_data(n: int = 24000, seed: int = 11) -> bytes:
    rng = random.Random(seed)
    base = bytearray(b"\x00" * n)
    for word in (b"needle", b"marker", b"abbbc", b"foo42bar"):
        for _ in range(20):
            pos = rng.randrange(n - len(word))
            base[pos : pos + len(word)] = word
    return bytes(base)


@needs_numpy
class TestFusedSeams:
    def test_prefilter_cold_skip_seam(self):
        # A long cold run no pattern can start in: the literal prefilter
        # skips it and the input-parallel seam lands mid-skip.
        cold = b"\x00" * 5000
        data = b"needle" + cold + b"abbc" + cold + b"foo7bar"
        nfa_rs = _forced(SEAM_PATTERNS, CompiledMode.NFA)
        dfa_rs = _forced(SEAM_PATTERNS, CompiledMode.DFA)
        serial = BatchEngine(
            EngineConfig(jobs=1, backend="fused", use_cache=False)
        ).scan(nfa_rs, data)
        split_engine = BatchEngine(
            EngineConfig(
                jobs=1,
                input_jobs=2,
                backend="fused",
                min_chunk_bytes=64,
                use_cache=False,
            )
        )
        _assert_results_identical(split_engine.scan(dfa_rs, data), serial)
        _assert_results_identical(split_engine.scan(nfa_rs, data), serial)

    @pytest.mark.parametrize("input_jobs", [2, 5])
    def test_split_scan_matches_serial_nfa(self, input_jobs):
        data = _seam_data()
        nfa_rs = _forced(SEAM_PATTERNS, CompiledMode.NFA)
        dfa_rs = _forced(SEAM_PATTERNS, CompiledMode.DFA)
        serial = BatchEngine(
            EngineConfig(jobs=1, backend="fused", use_cache=False)
        ).scan(nfa_rs, data)
        got = BatchEngine(
            EngineConfig(
                jobs=1,
                input_jobs=input_jobs,
                backend="fused",
                min_chunk_bytes=512,
                use_cache=False,
            )
        ).scan(dfa_rs, data)
        _assert_results_identical(got, serial)

    def test_checkpoint_at_a_seam_resumes_identically(self, tmp_path):
        # Snapshot mid-stream with input_jobs=2 (so the feeder's seam
        # falls inside the fed segment), restore into a fresh scan, and
        # finish: the DFA-mode result must equal the uninterrupted
        # NFA-mode scan.
        data = _seam_data(seed=13)
        nfa_rs = _forced(SEAM_PATTERNS, CompiledMode.NFA)
        dfa_rs = _forced(SEAM_PATTERNS, CompiledMode.DFA)
        with use_backend("fused"):
            sim = RAPSimulator(DEFAULT_CONFIG)
            plain = BatchEngine(
                EngineConfig(jobs=1, use_cache=False)
            ).scan(nfa_rs, data)

            mapping = sim.build_mapping(dfa_rs, bin_size=None)
            scan = DurableScan(
                dfa_rs,
                mapping,
                DEFAULT_CONFIG,
                input_jobs=2,
                min_chunk_bytes=512,
            )
            store = CheckpointStore(tmp_path)
            scan.feed(data[: len(data) // 2], at_end=False)
            store.write(scan.snapshot(), scan.offset)

            resumed = DurableScan(
                dfa_rs,
                mapping,
                DEFAULT_CONFIG,
                input_jobs=2,
                min_chunk_bytes=512,
            )
            resumed.restore(store.load_latest(), data)
            assert resumed.offset == len(data) // 2
            resumed.feed(data[resumed.offset :], at_end=True)
            got = sim.run_from_activity(dfa_rs, resumed.finish(), mapping)
        _assert_results_identical(got, plain)

    def test_durable_engine_path_forced_dfa(self, tmp_path):
        data = _seam_data(seed=17)
        nfa_rs = _forced(SEAM_PATTERNS, CompiledMode.NFA)
        dfa_rs = _forced(SEAM_PATTERNS, CompiledMode.DFA)
        plain = BatchEngine(
            EngineConfig(jobs=1, backend="fused", use_cache=False)
        ).scan(nfa_rs, data)
        outcome = BatchEngine(
            EngineConfig(
                jobs=1,
                input_jobs=2,
                backend="fused",
                min_chunk_bytes=512,
                use_cache=False,
                checkpoint_dir=str(tmp_path),
                checkpoint_every_bytes=4096,
            )
        ).durable_scan(dfa_rs, data)
        assert outcome.ok
        _assert_results_identical(outcome.result, plain)


class TestAutoSelection:
    def test_auto_picks_dfa_for_low_activity_workload(self):
        # A seeded keyword-with-gap workload: unbounded stars keep it
        # off NBVA/LNFA, single-char labels keep the predicted activity
        # low, so the cost model sends it to the DFA tier.
        rng = random.Random(42)
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        words = [
            "".join(rng.choice(alphabet) for _ in range(6)) for _ in range(12)
        ]
        patterns = [f"{w[:3]}{w[3]}*{w[4:]}" for w in words]
        ruleset = compile_ruleset(patterns)
        modes = [r.mode for r in ruleset]
        assert CompiledMode.DFA in modes
        assert modes.count(CompiledMode.DFA) >= len(patterns) // 2

    def test_engine_mode_knob_routes_compiles(self, monkeypatch):
        from repro.compiler.costmodel import MODE_ENV

        monkeypatch.delenv(MODE_ENV, raising=False)
        engine = BatchEngine(EngineConfig(use_cache=False, mode="nfa"))
        ruleset = engine.compile(["ab*c", "needle"])
        assert all(r.mode is CompiledMode.NFA for r in ruleset)
        # Env route: auto defers to RAP_MODE.
        monkeypatch.setenv(MODE_ENV, "dfa")
        engine = BatchEngine(EngineConfig(use_cache=False))
        ruleset = engine.compile(["ab*c", "needle"])
        assert all(r.mode is CompiledMode.DFA for r in ruleset)

    def test_engine_mode_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(mode="warp-speed")

    def test_explain_reports_choice_and_costs(self, monkeypatch):
        from repro.compiler.costmodel import MODE_ENV

        monkeypatch.delenv(MODE_ENV, raising=False)
        engine = BatchEngine(EngineConfig(use_cache=False))
        entries = engine.explain(["ab*c", "needle", "a(b"])
        by_pattern = {e.pattern: e for e in entries}
        star = by_pattern["ab*c"]
        assert star.trace.mode is CompiledMode.DFA
        assert star.trace.costs["dfa"] < star.trace.costs["nfa"]
        assert by_pattern["needle"].trace.mode is CompiledMode.LNFA
        assert by_pattern["a(b"].error is not None
