"""Supervisor tests: deadlines, retries, respawn, and the inline fallback.

Worker functions live at module level so the pool can pickle them by
reference (the forked children inherit this module).  Every test passes
an explicit ``fault_plan`` — including ``""`` for "no faults" — so the
suite behaves identically under CI's environment-driven fault leg.
"""

import pytest

from repro.engine.pool import parallel_map
from repro.engine.supervisor import (
    SupervisorConfig,
    UnitOutcome,
    run_supervised,
)
from repro.errors import TaskTimeoutError, WorkerCrashError

_STATE: dict = {}

# Retry knobs for the fast tests: tiny backoff, short deadline.
FAST = SupervisorConfig(timeout=None, retries=2, backoff=0.001)
DEADLINE = SupervisorConfig(timeout=0.2, retries=3, backoff=0.001)


def _double(x):
    return x * 2


def _bad_input(x):
    raise ValueError(f"deterministic rejection of {x!r}")


def _seed_state(tag):
    _STATE["tag"] = tag


def _clear_state():
    _STATE.clear()


def _read_state(x):
    return (_STATE["tag"], x)


class TestInlinePath:
    def test_order_and_attempts(self):
        outcomes = run_supervised(
            _double, [1, 2, 3], jobs=1, config=FAST, fault_plan=""
        )
        assert [o.result for o in outcomes] == [2, 4, 6]
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert [o.index for o in outcomes] == [0, 1, 2]

    def test_empty_items(self):
        assert run_supervised(_double, [], jobs=4, fault_plan="") == []

    def test_deterministic_error_not_retried(self):
        outcomes = run_supervised(
            _bad_input, ["x"], jobs=1, config=FAST, fault_plan=""
        )
        (o,) = outcomes
        assert not o.ok
        assert isinstance(o.error, ValueError)
        assert o.attempts == 1  # ValueError: re-running cannot help

    def test_transient_error_retried_to_success(self):
        # error@1:0 fires only on unit 1's first attempt; the retry runs
        # clean and the outcome is healthy.
        outcomes = run_supervised(
            _double,
            [5, 6],
            jobs=1,
            config=FAST,
            fault_plan="error@1:0",
        )
        assert [o.result for o in outcomes] == [10, 12]
        assert outcomes[0].attempts == 1
        assert outcomes[1].attempts == 2

    def test_injected_crash_stays_parent_safe(self):
        outcomes = run_supervised(
            _double, [7], jobs=1, config=FAST, fault_plan="crash@0:0"
        )
        (o,) = outcomes
        assert o.ok and o.result == 14
        assert o.attempts == 2

    def test_exhausted_retries_keep_final_error(self):
        plan = "error@0:0;error@0:1;error@0:2"
        outcomes = run_supervised(
            _double, [1], jobs=1, config=FAST, fault_plan=plan
        )
        (o,) = outcomes
        assert not o.ok
        assert isinstance(o.error, RuntimeError)
        assert o.attempts == FAST.retries + 1

    def test_initializer_and_finalizer_scope_state(self):
        outcomes = run_supervised(
            _read_state,
            [1, 2],
            jobs=1,
            initializer=_seed_state,
            initargs=("seeded",),
            finalizer=_clear_state,
            config=FAST,
            fault_plan="",
        )
        assert [o.result for o in outcomes] == [("seeded", 1), ("seeded", 2)]
        assert _STATE == {}  # the finalizer ran in the parent


class TestPooledPath:
    def test_pool_matches_inline(self):
        items = list(range(6))
        pooled = run_supervised(
            _double, items, jobs=2, config=FAST, fault_plan=""
        )
        assert [o.result for o in pooled] == [x * 2 for x in items]
        assert all(o.ok for o in pooled)

    def test_worker_crash_respawns_and_recovers(self):
        # Unit 0's first attempt kills its worker (BrokenProcessPool);
        # the supervisor respawns a pool for the missing units only and
        # the final results are complete and ordered.
        outcomes = run_supervised(
            _double, [1, 2, 3, 4], jobs=2, config=FAST, fault_plan="crash@0:0"
        )
        assert [o.result for o in outcomes] == [2, 4, 6, 8]
        assert outcomes[0].attempts >= 2

    def test_deadline_overrun_retried(self):
        # Unit 1 sleeps past the 0.2s deadline on its first attempt; the
        # retry runs clean.
        outcomes = run_supervised(
            _double,
            [1, 2, 3],
            jobs=2,
            config=DEADLINE,
            fault_plan="hang@1:0*1.5",
        )
        assert [o.result for o in outcomes] == [2, 4, 6]
        assert outcomes[1].attempts >= 2

    def test_every_pool_attempt_hanging_degrades_not_fails(self):
        # Every pool attempt of unit 0 blows its deadline; the inline
        # last resort has no deadline (it sleeps through the hang), so
        # the run degrades to sequential speed but still completes.
        plan = ";".join(f"hang@0:{a}*0.3" for a in range(8))
        cfg = SupervisorConfig(timeout=0.1, retries=1, backoff=0.001)
        outcomes = run_supervised(
            _double, [1, 2], jobs=2, config=cfg, fault_plan=plan
        )
        assert [o.result for o in outcomes] == [2, 4]
        assert outcomes[0].attempts == cfg.retries + 2

    def test_pool_round_classifies_timeout(self):
        # The deadline overrun surfaces as a structured, retryable
        # TaskTimeoutError naming the unit and attempt count.
        from repro.engine import supervisor
        from repro.engine.faults import FaultPlan

        cfg = SupervisorConfig(timeout=0.1, retries=0)
        outcomes = [UnitOutcome(index=i) for i in range(2)]
        retry = supervisor._pool_round(
            _double,
            [1, 2],
            [0, 1],
            [0, 0],
            2,
            None,
            (),
            FaultPlan.parse("hang@0:0*1.5"),
            cfg,
            outcomes,
        )
        assert retry == [0]
        assert isinstance(outcomes[0].error, TaskTimeoutError)
        assert outcomes[0].error.unit == 0
        assert outcomes[0].error.attempts == 1
        assert outcomes[1].ok and outcomes[1].result == 4

    def test_pool_exhaustion_falls_back_inline(self):
        # Crash every pool attempt of unit 0; the inline last resort
        # (which cannot crash the parent) completes it.
        plan = ";".join(f"crash@0:{a}" for a in range(FAST.retries + 1))
        outcomes = run_supervised(
            _double, [9, 10], jobs=2, config=FAST, fault_plan=plan
        )
        assert [o.result for o in outcomes] == [18, 20]
        assert outcomes[0].attempts == FAST.retries + 2

    def test_deterministic_error_not_retried_in_pool(self):
        outcomes = run_supervised(
            _bad_input, ["a", "b"], jobs=2, config=FAST, fault_plan=""
        )
        assert all(not o.ok for o in outcomes)
        assert all(o.attempts == 1 for o in outcomes)

    def test_crash_error_pickles_with_context(self):
        err = WorkerCrashError("boom", unit=3, attempts=2, phase="execute")
        import pickle

        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, WorkerCrashError)
        assert back.context() == err.context()


class TestParallelMapFacade:
    def test_returns_plain_results(self):
        assert parallel_map(_double, [1, 2, 3], jobs=2, fault_plan="") == [
            2,
            4,
            6,
        ]

    def test_raises_first_error_unchanged(self):
        with pytest.raises(ValueError, match="deterministic rejection"):
            parallel_map(_bad_input, ["x"], jobs=1, fault_plan="")

    def test_recovers_from_injected_crash(self):
        assert parallel_map(
            _double,
            [1, 2, 3, 4],
            jobs=2,
            retries=2,
            backoff=0.001,
            fault_plan="crash@2:0",
        ) == [2, 4, 6, 8]


class TestUnitOutcome:
    def test_ok_tracks_error(self):
        assert UnitOutcome(index=0, result=5).ok
        assert not UnitOutcome(index=0, error=RuntimeError()).ok
