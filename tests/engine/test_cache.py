"""Compile-cache tests: keying, invalidation, and corruption recovery."""

import json
import os

import pytest

from repro.compiler import CompilerConfig
from repro.engine import cache as cache_mod
from repro.engine.cache import (
    CACHE_DIR_ENV,
    CACHE_MAX_MB_ENV,
    enforce_cache_budget,
    CompileCache,
    cached_compile_ruleset,
    default_cache_dir,
    ruleset_cache_key,
)
from repro.hardware.config import DEFAULT_CONFIG
from repro.io.serialize import ruleset_to_json

PATTERNS = ["abc", "a{4}b", "x[yz]w"]


class TestCacheKey:
    def test_key_is_stable(self):
        a = ruleset_cache_key(PATTERNS, CompilerConfig())
        b = ruleset_cache_key(list(PATTERNS), CompilerConfig())
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_key_tracks_patterns(self):
        base = ruleset_cache_key(PATTERNS)
        assert ruleset_cache_key(PATTERNS + ["q"]) != base
        # Order is part of the compile's identity (regex ids).
        assert ruleset_cache_key(list(reversed(PATTERNS))) != base

    def test_key_tracks_compiler_config(self):
        base = ruleset_cache_key(PATTERNS, CompilerConfig())
        assert (
            ruleset_cache_key(PATTERNS, CompilerConfig(bv_depth=32)) != base
        )
        assert (
            ruleset_cache_key(PATTERNS, CompilerConfig(unfold_threshold=3))
            != base
        )

    def test_key_tracks_hardware_config(self):
        import dataclasses

        base = ruleset_cache_key(PATTERNS, CompilerConfig())
        hw = dataclasses.replace(DEFAULT_CONFIG, clock_ghz=9.9)
        assert ruleset_cache_key(PATTERNS, CompilerConfig(hw=hw)) != base

    def test_key_tracks_format_version(self, monkeypatch):
        base = ruleset_cache_key(PATTERNS)
        monkeypatch.setattr(
            cache_mod, "FORMAT_VERSION", cache_mod.FORMAT_VERSION + 1
        )
        assert ruleset_cache_key(PATTERNS) != base

    def test_non_string_patterns_rejected(self):
        with pytest.raises(TypeError):
            ruleset_cache_key([b"abc"])


class TestCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "over"))
        assert default_cache_dir() == tmp_path / "over"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().name == "rap-repro"


class TestCompileCache:
    def test_miss_then_hit_round_trips(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = cached_compile_ruleset(PATTERNS, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        warm = cached_compile_ruleset(PATTERNS, cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert ruleset_to_json(warm) == ruleset_to_json(cold)

    def test_different_config_different_entry(self, tmp_path):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, CompilerConfig(), cache)
        cached_compile_ruleset(PATTERNS, CompilerConfig(bv_depth=32), cache)
        assert cache.misses == 2
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, cache=cache)
        monkeypatch.setattr(
            cache_mod, "FORMAT_VERSION", cache_mod.FORMAT_VERSION + 1
        )
        cached_compile_ruleset(PATTERNS, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = cached_compile_ruleset(PATTERNS, cache=cache)
        key = ruleset_cache_key(PATTERNS, CompilerConfig())
        cache.path(key).write_text("{ not json")
        again = cached_compile_ruleset(PATTERNS, cache=cache)
        assert ruleset_to_json(again) == ruleset_to_json(cold)
        # The bad entry was replaced with a good one.
        assert cache.get(key) is not None

    def test_truncated_json_recovers(self, tmp_path):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, cache=cache)
        key = ruleset_cache_key(PATTERNS, CompilerConfig())
        full = cache.path(key).read_text()
        cache.path(key).write_text(full[: len(full) // 2])
        assert cache.get(key) is None
        assert not cache.path(key).exists()

    def test_wrong_document_recovers(self, tmp_path):
        cache = CompileCache(tmp_path)
        key = ruleset_cache_key(PATTERNS, CompilerConfig())
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path(key).write_text(json.dumps({"format": "other"}))
        assert cache.get(key) is None

    def test_put_is_atomic(self, tmp_path):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, cache=cache)
        # No temp droppings survive a successful write.
        assert list(tmp_path.glob("*.tmp")) == []


class TestChecksumIntegrity:
    def entry(self, cache):
        cached_compile_ruleset(PATTERNS, cache=cache)
        return cache.path(ruleset_cache_key(PATTERNS, CompilerConfig()))

    def test_entries_carry_a_checksum(self, tmp_path):
        cache = CompileCache(tmp_path)
        document = json.loads(self.entry(cache).read_text())
        assert document["entry_version"] == cache_mod.ENTRY_VERSION
        assert len(document["checksum"]) == 64
        assert isinstance(document["payload"], str)

    def test_payload_tamper_is_positively_detected(self, tmp_path):
        # Flip one byte of the payload while keeping the envelope (and
        # even the payload itself) valid JSON: only the checksum can
        # catch this, the deserializer alone would not.
        cache = CompileCache(tmp_path)
        path = self.entry(cache)
        document = json.loads(path.read_text())
        document["payload"] = document["payload"].replace(
            '"abc"', '"abq"', 1
        )
        path.write_text(json.dumps(document))
        assert cache.get(path.stem) is None
        assert cache.evictions == 1
        assert not path.exists()
        err = cache.last_corruption
        assert err is not None
        assert "checksum mismatch" in str(err)
        assert err.phase == "cache"

    def test_pre_envelope_entry_is_a_corrupt_miss(self, tmp_path):
        # An entry from before the checksummed envelope (a bare ruleset
        # document) must evict, not crash.
        cache = CompileCache(tmp_path)
        path = self.entry(cache)
        document = json.loads(path.read_text())
        path.write_text(document["payload"])
        assert cache.get(path.stem) is None
        assert cache.evictions == 1

    def test_eviction_counts_and_recovers(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = cached_compile_ruleset(PATTERNS, cache=cache)
        path = cache.path(ruleset_cache_key(PATTERNS, CompilerConfig()))
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        again = cached_compile_ruleset(PATTERNS, cache=cache)
        assert ruleset_to_json(again) == ruleset_to_json(cold)
        assert cache.evictions == 1
        assert (cache.hits, cache.misses) == (0, 2)
        # The rewritten entry verifies clean.
        assert cached_compile_ruleset(PATTERNS, cache=cache) is not None
        assert cache.hits == 1


class TestFaultInjectedCachePuts:
    def test_truncate_cache_directive_round_trips(self, tmp_path):
        # The injected half-write is caught by the checksum on the next
        # read, evicted, and recompiled — results never change.
        from repro.engine import faults

        faults.install_plan("truncate_cache@0")
        try:
            cache = CompileCache(tmp_path)
            cold = cached_compile_ruleset(PATTERNS, cache=cache)
            # Ordinal 0 write was truncated on disk.
            again = cached_compile_ruleset(PATTERNS, cache=cache)
            assert ruleset_to_json(again) == ruleset_to_json(cold)
            assert cache.evictions == 1
            # Ordinal 1 rewrite was clean: now it hits.
            cached_compile_ruleset(PATTERNS, cache=cache)
            assert cache.hits == 1
        finally:
            faults.reset()


class TestCacheBudget:
    """``RAP_CACHE_MAX_MB``: LRU size-bound eviction over the cache tree."""

    def _fill(self, root, names, size=1000):
        root.mkdir(parents=True, exist_ok=True)
        for i, name in enumerate(names):
            path = root / name
            path.write_bytes(b"x" * size)
            # Strictly increasing recency, oldest first.
            os.utime(path, (1_000_000 + i, 1_000_000 + i))

    def test_unset_budget_is_unbounded(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_MAX_MB_ENV, raising=False)
        self._fill(tmp_path, ["a.json", "b.json"])
        assert enforce_cache_budget(tmp_path) == 0
        assert len(list(tmp_path.iterdir())) == 2

    def test_malformed_budget_is_unbounded(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "lots")
        self._fill(tmp_path, ["a.json"])
        assert enforce_cache_budget(tmp_path) == 0

    def test_evicts_oldest_first(self, tmp_path, monkeypatch):
        # Budget fits two 1000-byte files: the oldest two of four go.
        monkeypatch.setenv(CACHE_MAX_MB_ENV, str(2000 / (1024 * 1024)))
        self._fill(tmp_path, ["a.json", "b.json", "c.json", "d.json"])
        assert enforce_cache_budget(tmp_path) == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "c.json",
            "d.json",
        ]

    def test_keep_survives_even_over_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_MB_ENV, str(500 / (1024 * 1024)))
        self._fill(tmp_path, ["old.json", "kept.json"])
        evicted = enforce_cache_budget(tmp_path, keep=tmp_path / "kept.json")
        assert evicted == 1
        assert [p.name for p in tmp_path.iterdir()] == ["kept.json"]

    def test_covers_native_subdir(self, tmp_path, monkeypatch):
        # The native/ shared objects share the budget with entries.
        monkeypatch.setenv(CACHE_MAX_MB_ENV, str(2000 / (1024 * 1024)))
        self._fill(tmp_path, ["a.json", "b.json"])
        self._fill(tmp_path / "native", ["old.so"], size=1000)
        os.utime(tmp_path / "native" / "old.so", (999_999, 999_999))
        assert enforce_cache_budget(tmp_path) == 1
        assert not (tmp_path / "native" / "old.so").exists()

    def test_in_flight_temp_files_are_not_evicted(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_MB_ENV, str(100 / (1024 * 1024)))
        self._fill(tmp_path, [".partial-write.tmp"])
        assert enforce_cache_budget(tmp_path) == 0
        assert (tmp_path / ".partial-write.tmp").exists()

    def test_put_surfaces_evictions(self, tmp_path, monkeypatch):
        # A put that pushes the tree over budget evicts older entries
        # (never its own) and counts them on the cache object.
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, cache=cache)
        first = cache.path(ruleset_cache_key(PATTERNS, CompilerConfig()))
        os.utime(first, (1_000_000, 1_000_000))
        monkeypatch.setenv(
            CACHE_MAX_MB_ENV, str(first.stat().st_size * 1.5 / (1024 * 1024))
        )
        cached_compile_ruleset(["different", "rules"], cache=cache)
        assert cache.evictions == 1
        assert not first.exists()
        second = cache.path(
            ruleset_cache_key(["different", "rules"], CompilerConfig())
        )
        assert second.exists()

    def test_get_freshens_recency(self, tmp_path, monkeypatch):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, cache=cache)
        entry = cache.path(ruleset_cache_key(PATTERNS, CompilerConfig()))
        os.utime(entry, (1_000_000, 1_000_000))
        assert cached_compile_ruleset(PATTERNS, cache=cache) is not None
        assert entry.stat().st_mtime > 1_000_000


class TestBlobStore:
    """Checksummed JSON side-documents (calibration persistence)."""

    def test_round_trip(self, tmp_path):
        cache = CompileCache(tmp_path)
        value = {"version": 1, "constants": {"nfa_base": 1.0}}
        cache.put_blob("costmodel-fused", value)
        assert cache.get_blob("costmodel-fused") == value

    def test_miss_is_none(self, tmp_path):
        assert CompileCache(tmp_path).get_blob("absent") is None

    def test_corruption_is_a_miss_and_eviction(self, tmp_path):
        cache = CompileCache(tmp_path)
        path = cache.put_blob("costmodel-fused", {"k": 1})
        document = json.loads(path.read_text())
        document["payload"] = document["payload"].replace("1", "2")
        path.write_text(json.dumps(document))
        assert cache.get_blob("costmodel-fused") is None
        assert cache.evictions == 1
        assert not path.exists()

    def test_invalid_names_rejected(self, tmp_path):
        cache = CompileCache(tmp_path)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                cache.blob_path(bad)

    def test_blobs_never_collide_with_entries(self, tmp_path):
        cache = CompileCache(tmp_path)
        key = ruleset_cache_key(PATTERNS, CompilerConfig())
        assert cache.blob_path(key) != cache.path(key)
