"""Compile-cache tests: keying, invalidation, and corruption recovery."""

import json

import pytest

from repro.compiler import CompilerConfig
from repro.engine import cache as cache_mod
from repro.engine.cache import (
    CACHE_DIR_ENV,
    CompileCache,
    cached_compile_ruleset,
    default_cache_dir,
    ruleset_cache_key,
)
from repro.hardware.config import DEFAULT_CONFIG
from repro.io.serialize import ruleset_to_json

PATTERNS = ["abc", "a{4}b", "x[yz]w"]


class TestCacheKey:
    def test_key_is_stable(self):
        a = ruleset_cache_key(PATTERNS, CompilerConfig())
        b = ruleset_cache_key(list(PATTERNS), CompilerConfig())
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_key_tracks_patterns(self):
        base = ruleset_cache_key(PATTERNS)
        assert ruleset_cache_key(PATTERNS + ["q"]) != base
        # Order is part of the compile's identity (regex ids).
        assert ruleset_cache_key(list(reversed(PATTERNS))) != base

    def test_key_tracks_compiler_config(self):
        base = ruleset_cache_key(PATTERNS, CompilerConfig())
        assert (
            ruleset_cache_key(PATTERNS, CompilerConfig(bv_depth=32)) != base
        )
        assert (
            ruleset_cache_key(PATTERNS, CompilerConfig(unfold_threshold=3))
            != base
        )

    def test_key_tracks_hardware_config(self):
        import dataclasses

        base = ruleset_cache_key(PATTERNS, CompilerConfig())
        hw = dataclasses.replace(DEFAULT_CONFIG, clock_ghz=9.9)
        assert ruleset_cache_key(PATTERNS, CompilerConfig(hw=hw)) != base

    def test_key_tracks_format_version(self, monkeypatch):
        base = ruleset_cache_key(PATTERNS)
        monkeypatch.setattr(
            cache_mod, "FORMAT_VERSION", cache_mod.FORMAT_VERSION + 1
        )
        assert ruleset_cache_key(PATTERNS) != base

    def test_non_string_patterns_rejected(self):
        with pytest.raises(TypeError):
            ruleset_cache_key([b"abc"])


class TestCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "over"))
        assert default_cache_dir() == tmp_path / "over"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().name == "rap-repro"


class TestCompileCache:
    def test_miss_then_hit_round_trips(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = cached_compile_ruleset(PATTERNS, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        warm = cached_compile_ruleset(PATTERNS, cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert ruleset_to_json(warm) == ruleset_to_json(cold)

    def test_different_config_different_entry(self, tmp_path):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, CompilerConfig(), cache)
        cached_compile_ruleset(PATTERNS, CompilerConfig(bv_depth=32), cache)
        assert cache.misses == 2
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, cache=cache)
        monkeypatch.setattr(
            cache_mod, "FORMAT_VERSION", cache_mod.FORMAT_VERSION + 1
        )
        cached_compile_ruleset(PATTERNS, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = cached_compile_ruleset(PATTERNS, cache=cache)
        key = ruleset_cache_key(PATTERNS, CompilerConfig())
        cache.path(key).write_text("{ not json")
        again = cached_compile_ruleset(PATTERNS, cache=cache)
        assert ruleset_to_json(again) == ruleset_to_json(cold)
        # The bad entry was replaced with a good one.
        assert cache.get(key) is not None

    def test_truncated_json_recovers(self, tmp_path):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, cache=cache)
        key = ruleset_cache_key(PATTERNS, CompilerConfig())
        full = cache.path(key).read_text()
        cache.path(key).write_text(full[: len(full) // 2])
        assert cache.get(key) is None
        assert not cache.path(key).exists()

    def test_wrong_document_recovers(self, tmp_path):
        cache = CompileCache(tmp_path)
        key = ruleset_cache_key(PATTERNS, CompilerConfig())
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path(key).write_text(json.dumps({"format": "other"}))
        assert cache.get(key) is None

    def test_put_is_atomic(self, tmp_path):
        cache = CompileCache(tmp_path)
        cached_compile_ruleset(PATTERNS, cache=cache)
        # No temp droppings survive a successful write.
        assert list(tmp_path.glob("*.tmp")) == []


class TestChecksumIntegrity:
    def entry(self, cache):
        cached_compile_ruleset(PATTERNS, cache=cache)
        return cache.path(ruleset_cache_key(PATTERNS, CompilerConfig()))

    def test_entries_carry_a_checksum(self, tmp_path):
        cache = CompileCache(tmp_path)
        document = json.loads(self.entry(cache).read_text())
        assert document["entry_version"] == cache_mod.ENTRY_VERSION
        assert len(document["checksum"]) == 64
        assert isinstance(document["payload"], str)

    def test_payload_tamper_is_positively_detected(self, tmp_path):
        # Flip one byte of the payload while keeping the envelope (and
        # even the payload itself) valid JSON: only the checksum can
        # catch this, the deserializer alone would not.
        cache = CompileCache(tmp_path)
        path = self.entry(cache)
        document = json.loads(path.read_text())
        document["payload"] = document["payload"].replace(
            '"abc"', '"abq"', 1
        )
        path.write_text(json.dumps(document))
        assert cache.get(path.stem) is None
        assert cache.evictions == 1
        assert not path.exists()
        err = cache.last_corruption
        assert err is not None
        assert "checksum mismatch" in str(err)
        assert err.phase == "cache"

    def test_pre_envelope_entry_is_a_corrupt_miss(self, tmp_path):
        # An entry from before the checksummed envelope (a bare ruleset
        # document) must evict, not crash.
        cache = CompileCache(tmp_path)
        path = self.entry(cache)
        document = json.loads(path.read_text())
        path.write_text(document["payload"])
        assert cache.get(path.stem) is None
        assert cache.evictions == 1

    def test_eviction_counts_and_recovers(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = cached_compile_ruleset(PATTERNS, cache=cache)
        path = cache.path(ruleset_cache_key(PATTERNS, CompilerConfig()))
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        again = cached_compile_ruleset(PATTERNS, cache=cache)
        assert ruleset_to_json(again) == ruleset_to_json(cold)
        assert cache.evictions == 1
        assert (cache.hits, cache.misses) == (0, 2)
        # The rewritten entry verifies clean.
        assert cached_compile_ruleset(PATTERNS, cache=cache) is not None
        assert cache.hits == 1


class TestFaultInjectedCachePuts:
    def test_truncate_cache_directive_round_trips(self, tmp_path):
        # The injected half-write is caught by the checksum on the next
        # read, evicted, and recompiled — results never change.
        from repro.engine import faults

        faults.install_plan("truncate_cache@0")
        try:
            cache = CompileCache(tmp_path)
            cold = cached_compile_ruleset(PATTERNS, cache=cache)
            # Ordinal 0 write was truncated on disk.
            again = cached_compile_ruleset(PATTERNS, cache=cache)
            assert ruleset_to_json(again) == ruleset_to_json(cold)
            assert cache.evictions == 1
            # Ordinal 1 rewrite was clean: now it hits.
            cached_compile_ruleset(PATTERNS, cache=cache)
            assert cache.hits == 1
        finally:
            faults.reset()
