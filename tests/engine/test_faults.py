"""Fault-plan tests: parsing, resolution precedence, deterministic firing."""

import pickle

import pytest

from repro.engine import faults
from repro.engine.faults import (
    FAULT_PLAN_ENV,
    FaultDirective,
    FaultPlan,
)
from repro.errors import WorkerCrashError


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    """Every test starts with no installed plan and no env plan."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestPlanParsing:
    def test_compact_single(self):
        plan = FaultPlan.parse("crash@3")
        assert plan.directives == (FaultDirective("crash", index=3),)

    def test_compact_full_coordinates(self):
        plan = FaultPlan.parse("hang@1:2*0.25")
        (d,) = plan.directives
        assert (d.kind, d.index, d.attempt, d.seconds) == ("hang", 1, 2, 0.25)

    def test_compact_multi_with_either_separator(self):
        semi = FaultPlan.parse("crash@0;error@1:1")
        comma = FaultPlan.parse("crash@0, error@1:1")
        assert semi == comma
        assert [d.kind for d in semi.directives] == ["crash", "error"]

    def test_json_form(self):
        plan = FaultPlan.parse(
            '[{"kind": "truncate_cache", "index": 1}, {"kind": "pickle"}]'
        )
        assert plan.directives[0].kind == "truncate_cache"
        assert plan.directives[1] == FaultDirective("pickle")

    def test_spec_round_trips(self):
        plan = FaultPlan.parse("crash@0;hang@1:0*2.5;error@2:1;pickle@3")
        assert FaultPlan.parse(plan.spec()) == plan

    def test_empty_specs(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ;  ")
        assert FaultPlan.parse(FaultPlan()) == FaultPlan()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("meltdown@0")

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("crash")


class TestPlanLookup:
    def test_for_unit_is_exact_coordinate(self):
        plan = FaultPlan.parse("error@2:1")
        assert plan.for_unit(2, 1) is not None
        assert plan.for_unit(2, 0) is None
        assert plan.for_unit(1, 1) is None

    def test_cache_kinds_never_match_units(self):
        plan = FaultPlan.parse("truncate_cache@0")
        assert plan.for_unit(0, 0) is None
        assert plan.for_cache_put(0) is not None
        assert plan.for_cache_put(1) is None


class TestResolution:
    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash@0")
        assert faults.plan_from_env().directives[0].kind == "crash"
        assert faults.resolve_plan(None) == faults.plan_from_env()

    def test_explicit_empty_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash@0")
        assert not faults.resolve_plan("")

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash@0")
        faults.install_plan("error@5")
        assert faults.active_plan().directives[0].kind == "error"
        # An explicitly installed *empty* plan disables env injection.
        faults.install_plan("")
        assert not faults.active_plan()
        faults.reset()
        assert faults.active_plan().directives[0].kind == "crash"


class TestInjection:
    def test_no_directive_is_a_noop(self):
        faults.inject_unit(0, 0, plan=FaultPlan.parse("crash@7"))

    def test_in_process_crash_is_an_exception(self):
        # A worker would os._exit; in-process the crash must stay
        # parent-safe and raise the structured error instead.
        with pytest.raises(WorkerCrashError) as info:
            faults.inject_unit(
                3, 1, plan=FaultPlan.parse("crash@3:1"), in_process=True
            )
        assert info.value.unit == 3

    def test_error_and_pickle_kinds(self):
        with pytest.raises(RuntimeError):
            faults.inject_unit(0, 0, plan=FaultPlan.parse("error@0"))
        with pytest.raises(pickle.PicklingError):
            faults.inject_unit(0, 0, plan=FaultPlan.parse("pickle@0"))

    def test_hang_returns_after_sleeping(self):
        faults.inject_unit(0, 0, plan=FaultPlan.parse("hang@0*0.001"))

    def test_cache_truncation_fires_at_exact_ordinal(self, tmp_path):
        faults.install_plan("truncate_cache@1")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        first.write_bytes(b"x" * 100)
        second.write_bytes(b"y" * 100)
        faults.inject_cache_put(first)  # ordinal 0: untouched
        faults.inject_cache_put(second)  # ordinal 1: truncated
        assert first.read_bytes() == b"x" * 100
        assert second.read_bytes() == b"y" * 50


class TestPlanHardening:
    """The parse DSL rejects malformed directives with structured errors
    that name the offending directive."""

    @pytest.mark.parametrize(
        "spec",
        ["crash@0*0", "hang@1*-2", "kill@0*0", "hang@1:0*-0.5"],
    )
    def test_nonpositive_seconds_rejected(self, spec):
        with pytest.raises(ValueError) as info:
            FaultPlan.parse(spec)
        message = str(info.value)
        assert "must be > 0" in message
        assert spec.split("*")[0] in message  # names the directive

    @pytest.mark.parametrize("spec", ["meltdown@0", "kil@1", "krash@2:1"])
    def test_unknown_kind_names_directive(self, spec):
        with pytest.raises(ValueError) as info:
            FaultPlan.parse(spec)
        assert spec.split("@")[0] in str(info.value)

    @pytest.mark.parametrize(
        "spec", ["crash@-1", "crash@x", "crash@", "@0", "crash@0:-1"]
    )
    def test_malformed_coordinates_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_json_unknown_field_rejected(self):
        with pytest.raises(ValueError) as info:
            FaultPlan.parse('[{"kind": "crash", "banana": 1}]')
        assert "banana" in str(info.value)

    def test_json_non_object_entry_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse('["crash@0"]')

    def test_json_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse('[{"kind": "hang", "seconds": -1}]')

    def test_new_kinds_parse(self):
        plan = FaultPlan.parse("kill@2;torn_checkpoint@1;disk_full@0")
        assert [d.kind for d in plan.directives] == [
            "kill",
            "torn_checkpoint",
            "disk_full",
        ]
        assert FaultPlan.parse(plan.spec()) == plan


class TestCheckpointInjection:
    def test_chunk_noop_without_directive(self):
        faults.inject_chunk(0, FaultPlan.parse("kill@5"))

    def test_disk_full_raises_enospc(self):
        import errno

        plan = FaultPlan.parse("disk_full@1")
        faults.inject_checkpoint_reserve(0, plan)  # ordinal 0: untouched
        with pytest.raises(OSError) as info:
            faults.inject_checkpoint_reserve(1, plan)
        assert info.value.errno == errno.ENOSPC

    def test_torn_checkpoint_truncates_committed_file(self, tmp_path):
        plan = FaultPlan.parse("torn_checkpoint@1")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        first.write_bytes(b"x" * 100)
        second.write_bytes(b"y" * 100)
        faults.inject_checkpoint_commit(first, 0, plan)
        faults.inject_checkpoint_commit(second, 1, plan)
        assert first.read_bytes() == b"x" * 100
        assert second.read_bytes() == b"y" * 50


class TestConnectionKinds:
    """Connection-level fault kinds for the scan service soak tests."""

    def test_conn_kinds_parse_and_round_trip(self):
        plan = FaultPlan.parse("disconnect@3;stall@10*0.2;garbage@7;reload@13")
        assert [d.kind for d in plan.directives] == [
            "disconnect",
            "stall",
            "garbage",
            "reload",
        ]
        assert FaultPlan.parse(plan.spec()) == plan

    def test_stall_spec_keeps_the_duration(self):
        plan = FaultPlan.parse("stall@2*0.25")
        assert plan.spec() == "stall@2:0*0.25"
        (d,) = plan.directives
        assert d.seconds == 0.25

    def test_for_conn_matches_the_segment_ordinal(self):
        plan = FaultPlan.parse("disconnect@3;kill@3;garbage@7")
        hit = plan.for_conn(3)
        assert hit is not None and hit.kind == "disconnect"
        assert plan.for_conn(2) is None
        assert plan.for_conn(7).kind == "garbage"
        # The engine-level kind at the same index stays engine-level.
        assert plan.for_chunk(3).kind == "kill"

    def test_conn_kinds_never_fire_at_engine_sites(self):
        plan = FaultPlan.parse("disconnect@0;stall@0*0.1;garbage@0;reload@0")
        assert plan.for_unit(0, 0) is None
        assert plan.for_chunk(0) is None
        assert plan.for_cache_put(0) is None
        assert plan.for_checkpoint_write(0) is None


class TestFleetKinds:
    """Worker-level fault kinds for the fleet supervisor chaos tests."""

    def test_fleet_kinds_parse_and_round_trip(self):
        plan = FaultPlan.parse("killworker@4;wedge@9")
        assert [d.kind for d in plan.directives] == ["killworker", "wedge"]
        assert FaultPlan.parse(plan.spec()) == plan

    def test_fleet_kinds_are_registered(self):
        for kind in faults.FLEET_KINDS:
            assert kind in faults.ALL_KINDS

    def test_for_fleet_tick_matches_the_health_ordinal(self):
        plan = FaultPlan.parse("killworker@4;wedge@9;disconnect@4")
        hit = plan.for_fleet_tick(4)
        assert hit is not None and hit.kind == "killworker"
        assert plan.for_fleet_tick(9).kind == "wedge"
        assert plan.for_fleet_tick(5) is None
        # The connection-level kind at the same index stays put.
        assert plan.for_conn(4).kind == "disconnect"

    def test_fleet_kinds_never_fire_at_other_sites(self):
        plan = FaultPlan.parse("killworker@0;wedge@0")
        assert plan.for_unit(0, 0) is None
        assert plan.for_chunk(0) is None
        assert plan.for_conn(0) is None
        assert plan.for_checkpoint_write(0) is None
