"""Merge algebra: the associative combinators the engine's shards rely on."""

import pytest

from repro.automata.nfa import StepStats
from repro.compiler import CompiledMode, CompilerConfig, compile_pattern
from repro.hardware.energy import EnergyLedger, Metrics
from repro.simulators.activity import collect_regex_activity
from repro.simulators.result import ArrayReport, SimulationResult


def ledger(**charges) -> EnergyLedger:
    led = EnergyLedger()
    for comp, pj in charges.items():
        led.charge(comp, pj)
    return led


class TestEnergyLedgerAdd:
    def test_componentwise_sum(self):
        merged = ledger(cam=2.0, switch=1.0) + ledger(cam=3.0, bv=0.5)
        assert merged.energy_breakdown() == {
            "cam": 5.0,
            "switch": 1.0,
            "bv": 0.5,
        }

    def test_operands_untouched(self):
        a, b = ledger(cam=2.0), ledger(cam=3.0)
        a + b
        assert a.energy_pj == 2.0
        assert b.energy_pj == 3.0

    def test_associative(self):
        a, b, c = ledger(cam=1.0), ledger(cam=2.0, bv=1.0), ledger(bv=4.0)
        left = (a + b) + c
        right = a + (b + c)
        assert left.energy_breakdown() == right.energy_breakdown()

    def test_area_and_leakage_accumulate(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.add_area("tile", 10.0)
        b.add_area("tile", 5.0)
        b.add_leakage("tile", 2.0)
        merged = a + b
        assert merged.area_um2 == 15.0
        assert merged.leakage_w == 2.0 * 1e-6

    def test_non_ledger_rejected(self):
        with pytest.raises(TypeError):
            EnergyLedger() + 3


class TestMetricsMerge:
    def test_accumulates_work_keeps_hardware(self):
        a = Metrics(1.0, 2.0, 100, 100, 1.0, leakage_w=0.5)
        b = Metrics(3.0, 1.5, 50, 50, 1.0, leakage_w=0.7)
        m = a + b
        assert m.energy_uj == 4.0
        assert m.cycles == 150
        assert m.input_symbols == 150
        assert m.area_mm2 == 2.0  # shared hardware: max, not sum
        assert m.leakage_w == 0.7

    def test_clock_mismatch_rejected(self):
        a = Metrics(1.0, 1.0, 1, 1, 1.0)
        b = Metrics(1.0, 1.0, 1, 1, 2.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_associative(self):
        ms = [Metrics(float(i), i, i, i, 1.0) for i in range(1, 4)]
        left = (ms[0] + ms[1]) + ms[2]
        right = ms[0] + (ms[1] + ms[2])
        assert left == right


class TestStepStatsMerge:
    def test_integer_exact(self):
        a = StepStats(cycles=3, active_states=5, matched_states=2, reports=1)
        b = StepStats(cycles=1, active_states=1, matched_states=4, reports=0)
        m = a + b
        assert m == StepStats(
            cycles=4, active_states=6, matched_states=6, reports=1
        )


def result(matches, energy=1.0, cycles=10, reports=()) -> SimulationResult:
    return SimulationResult(
        architecture="RAP",
        metrics=Metrics(energy, 1.0, cycles, cycles, 1.0),
        matches=matches,
        energy_breakdown_pj={"cam": energy},
        area_breakdown_um2={"tile": 2.0},
        stall_cycles=1,
        arrays=2,
        tiles=3,
        array_reports=tuple(reports),
    )


class TestSimulationResultMerge:
    def test_matches_union_sorted(self):
        a = result({0: [3, 9], 1: [2]})
        b = result({0: [1, 9], 2: [5]})
        m = a + b
        assert m.matches == {0: [1, 3, 9], 1: [2], 2: [5]}

    def test_work_accumulates(self):
        m = result({}) + result({})
        assert m.metrics.cycles == 20
        assert m.stall_cycles == 2
        assert m.energy_breakdown_pj == {"cam": 2.0}
        assert m.area_breakdown_um2 == {"tile": 2.0}  # max, not sum
        assert (m.arrays, m.tiles) == (2, 3)

    def test_reports_concatenate(self):
        report = ArrayReport("NFA", 1, 10, 0, 1.0)
        m = result({}, reports=[report]) + result({}, reports=[report])
        assert m.array_reports == (report, report)

    def test_architecture_mismatch_rejected(self):
        other = SimulationResult(
            architecture="CAMA", metrics=Metrics(0.0, 0.0, 0, 0, 1.0)
        )
        with pytest.raises(ValueError):
            result({}).merge(other)

    def test_associative(self):
        shards = [
            result({0: [1]}),
            result({0: [2], 1: [7]}),
            result({1: [3]}),
        ]
        left = (shards[0] + shards[1]) + shards[2]
        right = shards[0] + (shards[1] + shards[2])
        assert left == right


class TestActivityMerge:
    def test_regex_activity_identity_checked(self):
        a = collect_regex_activity(
            compile_pattern("ab", 0, CompilerConfig(forced_mode=CompiledMode.NFA)),
            b"abab",
        )
        b = collect_regex_activity(
            compile_pattern("ab", 1, CompilerConfig(forced_mode=CompiledMode.NFA)),
            b"abab",
        )
        with pytest.raises(ValueError):
            a.merge(b)

    def test_regex_activity_halves_sum_to_whole(self):
        regex = compile_pattern(
            "ab", 0, CompilerConfig(forced_mode=CompiledMode.NFA)
        )
        whole = collect_regex_activity(regex, b"abab")
        left = collect_regex_activity(regex, b"ab")
        right = collect_regex_activity(regex, b"ab", base=2)
        merged = left.merge(right)
        assert merged.cycles == whole.cycles
        assert merged.matches == whole.matches
        assert merged.active_state_cycles == whole.active_state_cycles
