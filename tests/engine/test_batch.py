"""Batch-engine tests: parallel output must be bit-identical to sequential.

The expensive multi-process paths run a couple of times on fixed
workloads; the hypothesis property drives the chunk-stitching machinery
in-process (same code the workers run, without fork overhead) so it can
afford many examples.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerConfig, compile_ruleset
from repro.engine import (
    BatchEngine,
    BatchReport,
    BatchTask,
    EngineConfig,
    effective_jobs,
    plan_chunks,
    required_overlap,
)
from repro.engine import batch as batch_mod
from repro.engine.supervisor import run_supervised
from repro.errors import CapacityError, CompileError
from repro.simulators import RAPSimulator

# All bounded-memory (acyclic, unanchored, no counters): chunkable.
WINDOWABLE = ["abcd", "ab?cd", "a[bc]d", "bcx"]
# Counters and unbounded repetition: sharded fallback territory.
UNBOUNDED = ["za{20}", "ab*c"]


def compiled(patterns):
    return compile_ruleset(patterns, CompilerConfig())


def chunked_scan_inprocess(ruleset, data, overlap, pieces):
    """Drive the exact worker/merge code path without a process pool."""
    engine = BatchEngine(EngineConfig(use_cache=False))
    sim = RAPSimulator()
    mapping = sim.build_mapping(ruleset, bin_size=None)
    chunks = plan_chunks(len(data), pieces, overlap, min_owned=1)
    units = BatchEngine._work_units(ruleset, mapping, chunks)
    if len(units) <= 1:  # the engine's own sequential fallback
        return sim.run(ruleset, data)
    payload = pickle.dumps(
        (ruleset, data, None, engine.hw, batch_mod.resolve_backend())
    )
    batch_mod._init_scan_worker(payload)
    outcomes = [batch_mod._scan_unit(unit) for unit in units]
    activity = BatchEngine._merge_outcomes(ruleset, mapping, outcomes, len(data))
    return sim.run_from_activity(ruleset, activity, mapping)


class TestPartitionPlanning:
    def test_chunks_tile_the_stream(self):
        chunks = plan_chunks(1000, 4, overlap=7)
        assert chunks[0].start == 0
        assert chunks[-1].end == 1000
        for prev, cur in zip(chunks, chunks[1:]):
            assert cur.start == prev.end
            assert cur.warm_start == cur.start - 7
        assert chunks[0].warm_start == 0

    def test_min_owned_limits_pieces(self):
        assert len(plan_chunks(100, 8, overlap=1, min_owned=40)) <= 2
        assert plan_chunks(0, 4, overlap=1) == []

    def test_required_overlap_windowable(self):
        overlap = required_overlap(compiled(WINDOWABLE))
        # Must cover the longest pattern's state memory.
        assert overlap is not None
        assert overlap >= 4

    def test_required_overlap_refuses_unbounded(self):
        assert required_overlap(compiled(["ab*c"])) is None  # cyclic NFA
        assert required_overlap(compiled(["za{20}"])) is None  # counter
        assert required_overlap(compiled(["^abcd"])) is None  # anchor

    def test_effective_jobs(self):
        assert effective_jobs(3) == 3
        assert effective_jobs(1) == 1
        assert effective_jobs(0) >= 1
        assert effective_jobs(None) >= 1


class TestChunkedScan:
    def test_boundary_straddling_match(self):
        ruleset = compiled(["abcd"])
        overlap = required_overlap(ruleset)
        # Two chunks of 32; "abcd" straddles the 32-byte boundary.
        data = bytearray(b"x" * 64)
        data[30:34] = b"abcd"
        seq = RAPSimulator().run(ruleset, bytes(data))
        par = chunked_scan_inprocess(ruleset, bytes(data), overlap, 2)
        assert 33 in par.matches[0]
        assert par == seq

    def test_match_inside_warmup_not_duplicated(self):
        ruleset = compiled(["abcd"])
        overlap = required_overlap(ruleset)
        # A match entirely inside chunk 1's warm-up window must be
        # reported exactly once (by chunk 0, which owns it).
        data = bytearray(b"x" * 40)
        data[16:20] = b"abcd"
        seq = RAPSimulator().run(ruleset, bytes(data))
        par = chunked_scan_inprocess(ruleset, bytes(data), overlap, 2)
        assert par.matches == seq.matches
        assert par == seq

    @settings(max_examples=60, deadline=None)
    @given(
        patterns=st.lists(
            st.sampled_from(WINDOWABLE), min_size=1, max_size=3, unique=True
        ),
        data=st.text(alphabet="abcdx", max_size=120).map(
            lambda s: s.encode()
        ),
        pieces=st.integers(min_value=2, max_value=5),
        slack=st.integers(min_value=0, max_value=3),
    )
    def test_chunked_equals_sequential(self, patterns, data, pieces, slack):
        ruleset = compiled(patterns)
        overlap = required_overlap(ruleset)
        assert overlap is not None
        seq = RAPSimulator().run(ruleset, data)
        par = chunked_scan_inprocess(ruleset, data, overlap + slack, pieces)
        assert par.matches == seq.matches
        assert par.energy_breakdown_pj == seq.energy_breakdown_pj
        assert par == seq


class TestParallelScan:
    def test_pool_chunked_scan_identical(self):
        ruleset = compiled(WINDOWABLE)
        data = (b"x" * 97 + b"abcd" + b"y" * 30) * 40
        engine = BatchEngine(
            EngineConfig(jobs=2, use_cache=False, min_chunk_bytes=256)
        )
        assert required_overlap(ruleset) is not None
        assert engine.scan(ruleset, data) == RAPSimulator().run(ruleset, data)

    def test_pool_sharded_fallback_identical(self):
        # Counters + a cyclic NFA force per-regex sharding over the
        # whole stream; LNFA literals add per-bin units.
        ruleset = compiled(WINDOWABLE + UNBOUNDED)
        assert required_overlap(ruleset) is None
        data = (b"za" * 40 + b"abcd" + b"abbc" + b"x" * 20) * 8
        engine = BatchEngine(EngineConfig(jobs=2, use_cache=False))
        assert engine.scan(ruleset, data) == RAPSimulator().run(ruleset, data)

    def test_jobs_one_is_the_reference_path(self):
        ruleset = compiled(WINDOWABLE)
        data = b"xabcdx" * 50
        engine = BatchEngine(EngineConfig(jobs=1, use_cache=False))
        assert engine.scan(ruleset, data) == RAPSimulator().run(ruleset, data)

    def test_empty_input(self):
        engine = BatchEngine(EngineConfig(jobs=2, use_cache=False))
        result = engine.scan(compiled(["abcd"]), b"")
        assert result.match_count == 0


class TestRunBatch:
    def test_batch_matches_sequential_runs(self):
        ruleset = compiled(WINDOWABLE + UNBOUNDED)
        streams = [b"abcd" * 30, b"za" * 60, b"abbbc" * 25]
        tasks = [BatchTask(data=s, ruleset=ruleset) for s in streams]
        engine = BatchEngine(EngineConfig(jobs=2, use_cache=False))
        results = engine.run_batch(tasks)
        sim = RAPSimulator()
        expected = [sim.run(ruleset, s) for s in streams]
        assert results == expected  # same values, same (task) order

    def test_task_validation(self):
        import pytest

        with pytest.raises(ValueError):
            BatchTask(data=b"x")
        with pytest.raises(ValueError):
            BatchTask(
                data=b"x", patterns=("a",), ruleset=compiled(["a"])
            )

    def test_merge_results_folds_left(self):
        ruleset = compiled(["abcd"])
        sim = RAPSimulator()
        shards = [sim.run(ruleset, b"abcd" * n) for n in (1, 2, 3)]
        engine = BatchEngine(EngineConfig(use_cache=False))
        merged = engine.merge_results(shards)
        assert merged == (shards[0] + shards[1]) + shards[2]

    def test_compile_through_cache(self, tmp_path):
        engine = BatchEngine(
            EngineConfig(jobs=1, use_cache=True, cache_dir=str(tmp_path))
        )
        first = engine.compile(["abcd", "a[bc]d"])
        second = engine.compile(["abcd", "a[bc]d"])
        assert engine.cache.hits == 1
        assert [r.pattern for r in second] == [r.pattern for r in first]

    def test_tasks_compile_lazily(self):
        task = BatchTask(data=b"abcd", patterns=("abcd",))
        engine = BatchEngine(EngineConfig(jobs=1, use_cache=False))
        (result,) = engine.run_batch([task])
        assert result.matches[0] == [3]

    def test_merge_results_rejects_empty(self):
        engine = BatchEngine(EngineConfig(use_cache=False))
        with pytest.raises(ValueError):
            engine.merge_results([])


# An unparseable pattern and a well-formed one the NFA backend cannot
# place (needs ~2400 STEs against a 2048-state one-array budget).
BROKEN_PATTERN = "a("
OVERSIZED_PATTERN = "abc" + "(x|y)" * 1200


class TestOnErrorPolicies:
    def engine(self, **overrides):
        defaults = dict(jobs=1, use_cache=False, fault_plan="")
        defaults.update(overrides)
        return BatchEngine(EngineConfig(**defaults))

    def mixed_tasks(self):
        return [
            BatchTask(data=b"xGATTACAx", patterns=(BROKEN_PATTERN,)),
            BatchTask(
                data=b"xGATTACAx",
                patterns=("GATTACA", OVERSIZED_PATTERN),
            ),
        ]

    def test_fail_raises_structured_compile_error(self):
        with pytest.raises(CompileError) as info:
            self.engine().run_batch(self.mixed_tasks())
        assert info.value.pattern == BROKEN_PATTERN
        assert info.value.pattern_index == 0
        assert info.value.phase == "compile"

    def test_fail_preserves_capacity_class(self):
        with pytest.raises(CapacityError):
            self.engine().compile([OVERSIZED_PATTERN])

    def test_quarantine_names_both_offenders(self):
        # The acceptance scenario: one uncompilable pattern and one
        # over-capacity pattern; the batch completes, returns the
        # healthy results, and the report names both offenders.
        report = self.engine().run_batch(
            self.mixed_tasks(), on_error="quarantine"
        )
        assert isinstance(report, BatchReport)
        assert not report.ok
        assert set(report.quarantine.patterns()) == {
            BROKEN_PATTERN,
            OVERSIZED_PATTERN,
        }
        by_pattern = {e.pattern: e for e in report.quarantine}
        assert by_pattern[BROKEN_PATTERN].error_type == "CompileError"
        assert by_pattern[OVERSIZED_PATTERN].error_type == "CapacityError"
        assert all(e.phase == "compile" for e in report.quarantine)
        # Task 0 had no healthy pattern at all: fully quarantined.
        assert report.results[0] is None
        # Task 1's healthy pattern still ran and matched.
        (healthy,) = report.healthy()
        assert report.results[1] is healthy
        assert healthy.matches[0] == [7]

    def test_skip_returns_holes(self):
        results = self.engine().run_batch(self.mixed_tasks(), on_error="skip")
        assert results[0] is None
        assert results[1] is not None

    def test_all_clean_quarantine_report_is_empty(self):
        report = self.engine().run_batch(
            [BatchTask(data=b"abcd", patterns=("abcd",))],
            on_error="quarantine",
        )
        assert report.ok
        assert report.healthy() == list(report.results)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(on_error="retry")
        with pytest.raises(ValueError):
            self.engine().run_batch([], on_error="explode")


class TestFaultInjectedExecution:
    """The acceptance property: crashes and deadline overruns during
    execution must never change results — only timing."""

    def test_batch_identical_under_crash_and_hang(self):
        ruleset = compiled(WINDOWABLE)
        streams = [b"abcd" * 30, b"xbcxabcd" * 20, b"acdx" * 25]
        tasks = [BatchTask(data=s, ruleset=ruleset) for s in streams]
        engine = BatchEngine(
            EngineConfig(
                jobs=2,
                use_cache=False,
                timeout=20.0,
                retries=3,
                backoff=0.001,
                fault_plan="crash@0:0;hang@1:0*0.05",
            )
        )
        sim = RAPSimulator()
        assert engine.run_batch(tasks) == [
            sim.run(ruleset, s) for s in streams
        ]

    def test_scan_identical_under_crash_and_timeout(self):
        # One worker crashes on its first unit, another unit sleeps
        # past the deadline; the merged scan is still bit-identical.
        ruleset = compiled(WINDOWABLE)
        data = (b"x" * 97 + b"abcd" + b"y" * 30) * 40
        engine = BatchEngine(
            EngineConfig(
                jobs=2,
                use_cache=False,
                min_chunk_bytes=256,
                timeout=0.5,
                retries=3,
                backoff=0.001,
                fault_plan="crash@0:0;hang@1:0*2.0",
            )
        )
        seq = RAPSimulator().run(ruleset, data)
        par = engine.scan(ruleset, data)
        assert par.matches == seq.matches
        assert par.energy_breakdown_pj == seq.energy_breakdown_pj
        assert par == seq

    @settings(max_examples=6, deadline=None)
    @given(
        data=st.text(alphabet="abcdx", min_size=40, max_size=160).map(
            lambda s: s.encode()
        ),
        crash_unit=st.integers(min_value=0, max_value=3),
        hang_unit=st.integers(min_value=0, max_value=3),
    )
    def test_scan_under_faults_equals_sequential(
        self, data, crash_unit, hang_unit
    ):
        ruleset = compiled(WINDOWABLE)
        engine = BatchEngine(
            EngineConfig(
                jobs=2,
                use_cache=False,
                min_chunk_bytes=8,
                overlap=8,
                timeout=10.0,
                retries=3,
                backoff=0.001,
                fault_plan=(
                    f"crash@{crash_unit}:0;hang@{hang_unit}:0*0.01"
                ),
            )
        )
        seq = RAPSimulator().run(ruleset, data)
        par = engine.scan(ruleset, data)
        assert par.matches == seq.matches
        assert par.energy_breakdown_pj == seq.energy_breakdown_pj
        assert par == seq


class TestWorkerStateHygiene:
    def test_inline_fallback_clears_worker_state(self):
        # The in-process path seeds _WORKER_STATE in the *parent*; the
        # finalizer must clear it so a scan cannot pin its ruleset and
        # stream in memory for the life of the process (regression).
        ruleset = compiled(["abcd"])
        data = b"xxabcdxx" * 4
        sim = RAPSimulator()
        mapping = sim.build_mapping(ruleset, bin_size=None)
        chunks = plan_chunks(len(data), 2, overlap=8, min_owned=1)
        units = BatchEngine._work_units(ruleset, mapping, chunks)
        payload = pickle.dumps(
            (ruleset, data, None, BatchEngine().hw, batch_mod.resolve_backend())
        )
        outcomes = run_supervised(
            batch_mod._scan_unit,
            units,
            jobs=1,
            initializer=batch_mod._init_scan_worker,
            initargs=(payload,),
            finalizer=batch_mod._reset_scan_worker,
            fault_plan="",
        )
        assert all(o.ok for o in outcomes)
        assert batch_mod._WORKER_STATE == {}

    def test_scan_leaves_no_parent_state(self):
        # End to end: exhaust the pool for every unit so scan's own
        # parallel_map takes the inline fallback inside this process.
        ruleset = compiled(["abcd"])
        data = (b"x" * 40 + b"abcd") * 30
        plan = ";".join(
            f"crash@{u}:{a}" for u in range(8) for a in range(3)
        )
        engine = BatchEngine(
            EngineConfig(
                jobs=2,
                use_cache=False,
                min_chunk_bytes=64,
                overlap=8,
                retries=2,
                backoff=0.001,
                fault_plan=plan,
            )
        )
        assert engine.scan(ruleset, data) == RAPSimulator().run(ruleset, data)
        assert batch_mod._WORKER_STATE == {}
