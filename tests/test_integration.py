"""End-to-end integration: the full pipeline on every synthetic benchmark.

For each of the seven benchmark suites (small instances): generate,
compile through the decision graph, map, simulate on RAP, and verify
every reported match against the independent Thompson oracle — the
reproduction's standing equivalent of the paper's Hyperscan consistency
check (Section 5.2), exercised across all domains, modes, and anchors.
"""

import pytest

from repro.automata.reference import ReferenceMatcher
from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.mapping.mapper import map_ruleset
from repro.regex.parser import parse_anchored
from repro.simulators import BVAPSimulator, CAMASimulator, RAPSimulator
from repro.workloads.datasets import BENCHMARKS, generate_benchmark
from repro.workloads.inputs import generate_input


def oracle_matches(pattern: str, data: bytes) -> list[int]:
    parsed = parse_anchored(pattern)
    return ReferenceMatcher(
        parsed.regex,
        anchored_start=parsed.anchored_start,
        anchored_end=parsed.anchored_end,
    ).find_matches(data)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_full_pipeline_against_oracle(name):
    benchmark = generate_benchmark(name, size=14, seed=5)
    data = generate_input(
        benchmark.profile.domain,
        2500,
        seed=5,
        patterns=benchmark.patterns,
        plant_every=400,
    )
    config = CompilerConfig(bv_depth=benchmark.profile.chosen_bv_depth)
    ruleset = compile_ruleset(benchmark.patterns, config)
    assert not ruleset.rejected

    result = RAPSimulator().run(
        ruleset, data, bin_size=benchmark.profile.chosen_bin_size
    )
    for regex in ruleset:
        expected = oracle_matches(regex.pattern, data)
        assert result.matches[regex.regex_id] == expected, regex.pattern

    # physical sanity of every reported quantity
    assert result.energy_uj > 0
    assert result.area_mm2 > 0
    assert 0 < result.throughput_gchps <= 2.081
    assert result.tiles >= 1


@pytest.mark.parametrize("name", ["Snort", "ClamAV", "Prosite"])
def test_baselines_agree_with_rap(name):
    benchmark = generate_benchmark(name, size=10, seed=9)
    data = generate_input(
        benchmark.profile.domain,
        2000,
        seed=9,
        patterns=benchmark.patterns,
        plant_every=350,
    )
    rap_rs = compile_ruleset(benchmark.patterns, CompilerConfig(bv_depth=8))
    nfa_rs = compile_ruleset(
        benchmark.patterns, CompilerConfig(forced_mode=CompiledMode.NFA)
    )
    rap = RAPSimulator().run(rap_rs, data)
    cama = CAMASimulator().run(nfa_rs, data)
    bvap = BVAPSimulator().run(nfa_rs, data)
    assert rap.matches == cama.matches == bvap.matches


def test_mapping_utilization_stays_high():
    """The paper reports >90% average utilization; at small scale the
    greedy mapper should still keep packing healthy."""
    total = 0.0
    for name in BENCHMARKS:
        benchmark = generate_benchmark(name, size=20, seed=4)
        ruleset = compile_ruleset(
            benchmark.patterns,
            CompilerConfig(bv_depth=benchmark.profile.chosen_bv_depth),
        )
        mapping = map_ruleset(
            ruleset, bin_size=benchmark.profile.chosen_bin_size
        )
        utilization = mapping.utilization()
        assert utilization > 0.4, name
        total += utilization
    assert total / len(BENCHMARKS) > 0.6


def test_determinism_end_to_end():
    """Same seed -> byte-identical results, across the whole pipeline."""

    def run_once():
        benchmark = generate_benchmark("Suricata", size=10, seed=3)
        data = generate_input(
            "network", 1500, seed=3, patterns=benchmark.patterns
        )
        ruleset = compile_ruleset(benchmark.patterns, CompilerConfig(bv_depth=8))
        result = RAPSimulator().run(ruleset, data)
        return result.matches, result.energy_uj, result.area_mm2

    assert run_once() == run_once()
