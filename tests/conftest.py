"""Shared pytest configuration: reproducible hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci`` (plus a pinned
``--hypothesis-seed``), so a property failure prints the
``@reproduce_failure`` blob and replays identically on a developer
machine — without the profile, shrunk counterexamples found under CI's
random seed can be unreproducible locally.
"""

import os

import pytest
from hypothesis import settings

settings.register_profile("ci", print_blob=True, derandomize=False)
settings.register_profile("dev", settings.get_profile("default"))

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True, scope="session")
def _hermetic_compile_cache(tmp_path_factory):
    """Point the compile cache away from the developer's real one.

    Mode selection now scores against calibration constants persisted
    in the compile cache (``rap calibrate``), so a calibrated machine
    would otherwise flip cost-model tests.  ``setdefault`` keeps an
    explicitly exported ``RAP_CACHE_DIR`` (CI) in force.
    """
    os.environ.setdefault(
        "RAP_CACHE_DIR", str(tmp_path_factory.mktemp("rap-cache"))
    )
    yield
