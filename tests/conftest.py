"""Shared pytest configuration: reproducible hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci`` (plus a pinned
``--hypothesis-seed``), so a property failure prints the
``@reproduce_failure`` blob and replays identically on a developer
machine — without the profile, shrunk counterexamples found under CI's
random seed can be unreproducible locally.
"""

import os

from hypothesis import settings

settings.register_profile("ci", print_blob=True, derandomize=False)
settings.register_profile("dev", settings.get_profile("default"))

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
