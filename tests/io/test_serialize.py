"""Round-trip and error-path tests for ruleset serialization."""

import json

import pytest
from hypothesis import given, settings

from repro.automata.glushkov import build_automaton
from repro.automata.nbva import NBVASimulator
from repro.compiler import CompilerConfig, compile_ruleset
from repro.io.serialize import (
    SerializationError,
    automaton_from_json,
    automaton_to_json,
    load_ruleset,
    loads_ruleset,
    ruleset_from_json,
    ruleset_to_json,
    save_ruleset,
)
from repro.regex.parser import parse
from repro.regex.rewrite import unfold_all
from repro.simulators import RAPSimulator

from tests.helpers import regex_trees

PATTERNS = ["ab{40}c", "a[bc]de", "xy*z", "\\x00[\\x01-\\x1f]{12}\\xff"]


@pytest.fixture()
def ruleset():
    return compile_ruleset(PATTERNS, CompilerConfig(bv_depth=8))


class TestAutomatonRoundTrip:
    @pytest.mark.parametrize(
        "pattern", ["abc", "a(?:b|c)*d", "ab{40}c", "x[^y]{3,9}z"]
    )
    def test_round_trip_structural(self, pattern):
        from repro.compiler.nbva_compiler import prepare_nbva
        from repro.hardware.config import DEFAULT_CONFIG

        regex = prepare_nbva(
            parse(pattern), unfold_threshold=4, depth=8, hw=DEFAULT_CONFIG
        )
        original = build_automaton(regex)
        restored = automaton_from_json(automaton_to_json(original))
        assert restored == original

    def test_round_trip_preserves_semantics(self):
        original = build_automaton(parse("a{9}b"))
        restored = automaton_from_json(automaton_to_json(original))
        data = b"aaaaaaaaab" * 3
        assert (
            NBVASimulator(restored).find_matches(data)
            == NBVASimulator(original).find_matches(data)
        )

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            automaton_from_json({"positions": [{"cc": "zz", "group": None}]})
        with pytest.raises(SerializationError):
            automaton_from_json({})


class TestRulesetRoundTrip:
    def test_file_round_trip(self, ruleset, tmp_path):
        path = save_ruleset(ruleset, tmp_path / "rules.json")
        restored = load_ruleset(path)
        assert restored == ruleset

    def test_string_round_trip(self, ruleset):
        text = json.dumps(ruleset_to_json(ruleset))
        assert loads_ruleset(text) == ruleset

    def test_restored_ruleset_simulates_identically(self, ruleset, tmp_path):
        data = (b"noise " * 10 + b"a" + b"b" * 40 + b"c a[bc]de xyz") * 3
        path = save_ruleset(ruleset, tmp_path / "rules.json")
        restored = load_ruleset(path)
        sim = RAPSimulator()
        assert sim.run(restored, data).matches == sim.run(ruleset, data).matches

    def test_rejections_preserved(self, tmp_path):
        ruleset = compile_ruleset(["abc", "a("], CompilerConfig())
        path = save_ruleset(ruleset, tmp_path / "r.json")
        restored = load_ruleset(path)
        assert restored.rejected == ruleset.rejected

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            ruleset_from_json({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(SerializationError):
            ruleset_from_json({"format": "rap-repro-ruleset", "version": 99})

    def test_mode_mix_preserved(self, ruleset, tmp_path):
        path = save_ruleset(ruleset, tmp_path / "r.json")
        assert load_ruleset(path).mode_counts() == ruleset.mode_counts()


@settings(max_examples=40, deadline=None)
@given(regex_trees(max_leaves=7, max_bound=4))
def test_random_automata_round_trip(tree):
    original = build_automaton(unfold_all(tree))
    restored = automaton_from_json(automaton_to_json(original))
    assert restored == original
