"""Input generator and witness sampler tests."""

import random
import re

import pytest
from hypothesis import given, settings

from repro.automata.reference import ReferenceMatcher
from repro.regex.parser import parse
from repro.workloads.inputs import background_traffic, generate_input
from repro.workloads.witness import sample_witness

from tests.helpers import regex_trees


class TestWitness:
    @pytest.mark.parametrize(
        "pattern",
        [
            "abc",
            "a[xy]c",
            "ab{3,7}c",
            "a.*b",
            "x(?:ab|cd)+y",
            "a{12}",
            "ab?c?d",
        ],
    )
    def test_witness_matches_its_regex(self, pattern):
        rng = random.Random(11)
        regex = parse(pattern)
        for _ in range(20):
            witness = sample_witness(regex, rng)
            assert re.fullmatch(
                regex.to_pattern().encode(), witness, re.DOTALL
            ), (pattern, witness)

    def test_empty_language_rejected(self):
        from repro.regex.ast import EMPTY

        with pytest.raises(ValueError):
            sample_witness(EMPTY, random.Random(0))

    def test_witnesses_stay_short(self):
        rng = random.Random(5)
        witness = sample_witness(parse("a{3,1000}b*"), rng)
        assert len(witness) <= 3 + 2 + 2


class TestInputs:
    def test_exact_length(self):
        data = generate_input("text", 500, seed=1)
        assert len(data) == 500

    def test_deterministic(self):
        assert generate_input("text", 300, seed=2) == generate_input(
            "text", 300, seed=2
        )

    def test_domain_alphabets(self):
        protein = generate_input("protein", 400, seed=3)
        assert set(protein) <= set(b"ACDEFGHIKLMNPQRSTVWY")
        text = generate_input("text", 400, seed=3)
        assert all(b < 128 for b in text)

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            generate_input("klingon", 100)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            generate_input("text", -1)

    def test_planted_witnesses_actually_match(self):
        patterns = ["wolf[0-9]{2}", "abcd"]
        data = generate_input(
            "text", 4000, seed=4, patterns=patterns, plant_every=300
        )
        hits = sum(
            len(ReferenceMatcher(parse(p)).find_matches(data))
            for p in patterns
        )
        assert hits >= 5

    def test_plant_rate_controls_match_density(self):
        patterns = ["zqzq"]
        sparse = generate_input(
            "text", 6000, seed=5, patterns=patterns, plant_every=2000
        )
        dense = generate_input(
            "text", 6000, seed=5, patterns=patterns, plant_every=200
        )
        matcher = ReferenceMatcher(parse("zqzq"))
        assert len(matcher.find_matches(dense)) > len(
            matcher.find_matches(sparse)
        )

    def test_no_patterns_is_pure_background(self):
        data = generate_input("binary", 256, seed=6)
        assert len(data) == 256

    def test_background_traffic_uses_rng(self):
        a = background_traffic("text", 100, random.Random(1))
        b = background_traffic("text", 100, random.Random(2))
        assert a != b


@settings(max_examples=40, deadline=None)
@given(regex_trees(max_leaves=6, max_bound=4))
def test_witness_property(tree):
    rng = random.Random(99)
    try:
        witness = sample_witness(tree, rng)
    except ValueError:
        return  # empty language
    assert re.fullmatch(tree.to_pattern().encode(), witness, re.DOTALL)


class TestGenerateInputWeights:
    """The weights argument is materialized once and validated up front."""

    PATTERNS = ["abc", "xyz"]

    def test_generator_weights_equal_list_weights(self):
        # A generator used to be exhausted by the alignment check and
        # then silently yield nothing inside the planting loop.
        ref = generate_input(
            "text", 2000, seed=1, patterns=self.PATTERNS, weights=[1.0, 2.0]
        )
        gen = generate_input(
            "text",
            2000,
            seed=1,
            patterns=self.PATTERNS,
            weights=(w for w in [1.0, 2.0]),
        )
        assert gen == ref

    def test_misaligned_weights_rejected(self):
        with pytest.raises(ValueError, match="align"):
            generate_input(
                "text", 100, patterns=self.PATTERNS, weights=[1.0]
            )

    def test_negative_weight_rejected_with_index(self):
        with pytest.raises(ValueError, match=r"weights\[1\]"):
            generate_input(
                "text", 100, patterns=self.PATTERNS, weights=[1.0, -0.5]
            )

    def test_nan_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            generate_input(
                "text",
                100,
                patterns=self.PATTERNS,
                weights=[float("nan"), 1.0],
            )

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            generate_input(
                "text", 100, patterns=self.PATTERNS, weights=[0.0, 0.0]
            )

    def test_zero_weight_pattern_never_planted(self):
        data = generate_input(
            "protein",
            3000,
            seed=2,
            patterns=["abc", "xyz"],
            plant_every=200,
            weights=[0.0, 1.0],
        )
        assert b"abc" not in data
        assert b"xyz" in data
