"""Synthetic benchmark generator tests."""

from collections import Counter

import pytest

from repro.compiler import CompilerConfig, compile_ruleset
from repro.compiler.decision import decide
from repro.workloads.anmlzoo import ANMLZOO_BENCHMARKS, generate_anmlzoo_benchmark
from repro.workloads.datasets import BENCHMARKS, generate_benchmark
from repro.workloads.profiles import PROFILES, BenchmarkProfile


class TestProfiles:
    def test_all_seven_benchmarks_defined(self):
        assert sorted(PROFILES) == sorted(
            [
                "ClamAV",
                "Prosite",
                "RegexLib",
                "SpamAssassin",
                "Snort",
                "Suricata",
                "Yara",
            ]
        )

    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad",
                domain="text",
                nfa_fraction=0.5,
                nbva_fraction=0.5,
                lnfa_fraction=0.5,
                rep_bound_range=(2, 4),
                lnfa_length_range=(2, 4),
                nfa_literal_range=(2, 4),
                chosen_bv_depth=4,
                chosen_bin_size=4,
                nominal_size=10,
            )

    def test_counts_sum_to_total(self):
        for profile in PROFILES.values():
            counts = profile.counts(97)
            assert sum(counts.values()) == 97

    def test_paper_mix_statements(self):
        """The qualitative Fig. 1 facts the text states explicitly."""
        assert PROFILES["Prosite"].nbva_fraction == 0.0
        assert PROFILES["ClamAV"].nbva_fraction >= 0.8
        assert PROFILES["Prosite"].lnfa_fraction > 0.5
        assert PROFILES["SpamAssassin"].lnfa_fraction > 0.5
        assert PROFILES["RegexLib"].nfa_fraction > 0.5


class TestGeneration:
    def test_deterministic(self):
        a = generate_benchmark("Snort", size=15, seed=3)
        b = generate_benchmark("Snort", size=15, seed=3)
        assert a.patterns == b.patterns

    def test_seed_changes_output(self):
        a = generate_benchmark("Snort", size=15, seed=3)
        b = generate_benchmark("Snort", size=15, seed=4)
        assert a.patterns != b.patterns

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_mix_matches_profile(self, name):
        bench = generate_benchmark(name, size=24, seed=1)
        counted = Counter(bench.intended_modes)
        expected = bench.profile.counts(24)
        nonzero = {k: v for k, v in expected.items() if v}
        assert counted == nonzero or counted == expected

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_decision_graph_confirms_modes(self, name):
        from repro.regex.parser import parse_anchored

        bench = generate_benchmark(name, size=18, seed=2)
        for pattern, intended in zip(bench.patterns, bench.intended_modes):
            decision = decide(
                parse_anchored(pattern).regex, unfold_threshold=8
            )
            assert decision.mode.value == intended, pattern

    def test_regexlib_patterns_partly_anchored(self):
        bench = generate_benchmark("RegexLib", size=40, seed=2)
        anchored = [p for p in bench.patterns if p.startswith("^")]
        assert 0 < len(anchored) < len(bench.patterns)
        assert all(p.endswith("$") for p in anchored)

    def test_scanning_benchmarks_unanchored(self):
        for name in ("Snort", "ClamAV", "Prosite"):
            bench = generate_benchmark(name, size=20, seed=2)
            assert not any(p.startswith("^") for p in bench.patterns), name

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_everything_compiles_cleanly(self, name):
        bench = generate_benchmark(name, size=12, seed=5)
        ruleset = compile_ruleset(bench.patterns, CompilerConfig(bv_depth=8))
        assert not ruleset.rejected
        assert len(ruleset) == 12


class TestAnmlzoo:
    def test_benchmarks_listed(self):
        assert ANMLZOO_BENCHMARKS == [
            "Brill",
            "ClamAV",
            "Dotstar",
            "PowerEN",
            "Snort",
        ]

    def test_dotstar_is_nfa_dominated(self):
        bench = generate_anmlzoo_benchmark("Dotstar", size=20, seed=0)
        assert Counter(bench.intended_modes)["NFA"] >= 18

    def test_brill_has_no_counting(self):
        bench = generate_anmlzoo_benchmark("Brill", size=20, seed=0)
        assert Counter(bench.intended_modes)["NBVA"] == 0

    def test_reuses_main_suites(self):
        ours = generate_anmlzoo_benchmark("Snort", size=10, seed=7)
        main = generate_benchmark("Snort", size=10, seed=7)
        assert ours.patterns == main.patterns
