"""LNFA and Shift-And tests (paper Section 2.1 Fig. 2, Section 3.2 Fig. 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import build_automaton
from repro.automata.lnfa import LNFA, from_automaton, is_linear
from repro.automata.nfa import NFASimulator
from repro.automata.shift_and import MultiShiftAnd, ShiftAnd, ShiftAndStats
from repro.regex.charclass import CharClass
from repro.regex.parser import parse
from repro.regex.rewrite import linearize

from tests.helpers import charclasses, inputs


def lnfa(pattern: str) -> LNFA:
    lin = linearize(parse(pattern), max_states=256)
    assert lin is not None and len(lin.sequences) == 1
    return LNFA(lin.sequences[0])


class TestLNFA:
    def test_paper_example_2_3(self):
        """a[bc].d is a 4-state LNFA."""
        auto = lnfa("a[bc].d")
        assert auto.state_count == 4
        assert auto.labels[1] == CharClass.of("b", "c")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LNFA(())

    def test_rejects_empty_class(self):
        with pytest.raises(ValueError):
            LNFA((CharClass.empty(),))

    def test_to_pattern(self):
        assert lnfa("a[bc].d").to_pattern() == "a[bc].d"

    def test_matches_at_oracle(self):
        auto = lnfa("ab")
        assert auto.matches_at(b"xab", 2)
        assert not auto.matches_at(b"xab", 1)
        assert not auto.matches_at(b"a", 0)

    def test_to_automaton_line_shape(self):
        auto = lnfa("abc").to_automaton()
        assert is_linear(auto)
        assert auto.state_count == 3

    def test_from_automaton_round_trip(self):
        original = lnfa("a[bc].d")
        assert from_automaton(original.to_automaton()) == original

    def test_is_linear_rejects_branching(self):
        auto = build_automaton(parse("a(?:b|c)d"))
        assert not is_linear(auto)

    def test_is_linear_rejects_self_loop(self):
        auto = build_automaton(parse("ab*c"))
        assert not is_linear(auto)

    def test_is_linear_rejects_multiple_finals(self):
        auto = build_automaton(parse("ab?"))
        assert not is_linear(auto)

    def test_from_automaton_rejects_nonlinear(self):
        with pytest.raises(ValueError):
            from_automaton(build_automaton(parse("a(?:b|c)d")))


class TestShiftAnd:
    def test_paper_fig2_trace(self):
        """Shift-And over a[bc].d? — the classical LNFA of Fig. 2 matches
        'abc' at position 2 (state q2 is final in the classical version;
        the hardware variant uses the single-final sequences a[bc]. and
        a[bc].d)."""
        matcher = ShiftAnd(lnfa("a[bc]."))
        assert matcher.find_matches(b"abc") == [2]

    def test_simple(self):
        matcher = ShiftAnd(lnfa("ana"))
        assert matcher.find_matches(b"banana") == [3, 5]

    def test_single_state(self):
        matcher = ShiftAnd(lnfa("a"))
        assert matcher.find_matches(b"aba") == [0, 2]

    def test_stats(self):
        stats = ShiftAndStats()
        ShiftAnd(lnfa("ab")).find_matches(b"abab", stats)
        assert stats.cycles == 4
        assert stats.reports == 2
        assert stats.active_bits > 0

    def test_agrees_with_nfa(self):
        seq = lnfa("a[bc].d")
        expected = NFASimulator(seq.to_automaton()).find_matches(b"abcdabxd")
        assert ShiftAnd(seq).find_matches(b"abcdabxd") == expected


class TestMultiShiftAnd:
    def patterns(self):
        return [lnfa("ab"), lnfa("bc"), lnfa("abc"), lnfa("c")]

    def test_reports_pattern_ids(self):
        matcher = MultiShiftAnd(self.patterns())
        hits = matcher.find_matches(b"abc")
        assert set(hits) == {(0, 1), (1, 2), (2, 2), (3, 2)}

    def test_no_cross_pattern_leakage(self):
        # pattern 'ab' followed in layout by 'cd': matching 'ab' must not
        # start 'd' matching via the boundary shift.
        matcher = MultiShiftAnd([lnfa("ab"), lnfa("cd")])
        assert matcher.find_matches(b"abd") == [(0, 1)]

    def test_total_bits(self):
        assert MultiShiftAnd(self.patterns()).total_bits == 2 + 2 + 3 + 1

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            MultiShiftAnd([])

    def test_equivalent_to_independent_runs(self):
        patterns = self.patterns()
        data = b"abcabcbcc"
        packed = MultiShiftAnd(patterns)
        expected = set()
        for k, p in enumerate(patterns):
            for end in ShiftAnd(p).find_matches(data):
                expected.add((k, end))
        assert set(packed.find_matches(data)) == expected


# -- property tests ------------------------------------------------------------


@st.composite
def lnfa_strategy(draw, max_len: int = 6):
    labels = draw(st.lists(charclasses(), min_size=1, max_size=max_len))
    return LNFA(tuple(labels))


@settings(max_examples=80, deadline=None)
@given(lnfa_strategy(), inputs(max_size=20))
def test_shift_and_equals_nfa_simulation(auto, data):
    expected = NFASimulator(auto.to_automaton()).find_matches(data)
    assert ShiftAnd(auto).find_matches(data) == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(lnfa_strategy(max_len=4), min_size=1, max_size=5), inputs(max_size=16))
def test_multi_shift_and_equals_per_pattern(lnfas, data):
    packed = MultiShiftAnd(lnfas)
    expected = set()
    for k, p in enumerate(lnfas):
        for end in ShiftAnd(p).find_matches(data):
            expected.add((k, end))
    assert set(packed.find_matches(data)) == expected


@settings(max_examples=60, deadline=None)
@given(lnfa_strategy(max_len=4), inputs(max_size=14))
def test_shift_and_matches_naive_oracle(auto, data):
    expected = [i for i in range(len(data)) if auto.matches_at(data, i)]
    assert ShiftAnd(auto).find_matches(data) == expected
