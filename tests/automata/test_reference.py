"""Reference (Thompson) oracle tests — validated against Python's re."""

from hypothesis import given, settings

from repro.automata.reference import ReferenceMatcher
from repro.regex.parser import parse

from tests.helpers import inputs, re_end_positions, regex_trees


class TestReferenceMatcher:
    def check(self, pattern: str, text: str):
        expected = re_end_positions(pattern, text)
        got = ReferenceMatcher(parse(pattern)).find_matches(text.encode())
        assert got == expected, (pattern, text)

    def test_literal(self):
        self.check("ana", "banana")

    def test_alternation(self):
        self.check("an|na", "banana")

    def test_star(self):
        self.check("ab*c", "abbbc ac abc")

    def test_plus(self):
        self.check("ab+c", "abbbc ac abc")

    def test_opt(self):
        self.check("ab?c", "abbbc ac abc")

    def test_bounded(self):
        self.check("a{2,4}", "aaaaaa")

    def test_open_bound(self):
        self.check("ba{2,}", "baaaa ba")

    def test_exact_bound(self):
        self.check("(?:ab){2}", "ababab")

    def test_nullable_no_empty_matches(self):
        assert ReferenceMatcher(parse("a*")).find_matches(b"bb") == []

    def test_empty_language(self):
        from repro.regex.ast import EMPTY

        assert ReferenceMatcher(EMPTY).find_matches(b"anything") == []

    def test_count_and_anywhere(self):
        m = ReferenceMatcher(parse("aa"))
        assert m.count_matches(b"aaaa") == 3
        assert m.matches_anywhere(b"aaaa")
        assert not m.matches_anywhere(b"bbb")


@settings(max_examples=80, deadline=None)
@given(regex_trees(max_leaves=7, max_bound=3), inputs(max_size=12))
def test_reference_agrees_with_python_re(tree, data):
    expected = re_end_positions(tree.to_pattern(), data.decode("ascii"))
    assert ReferenceMatcher(tree).find_matches(data) == expected
