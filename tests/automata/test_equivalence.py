"""Cross-engine equivalence: every execution model reports the same matches.

This mirrors the paper's consistency checks (Section 5.2): the simulator's
results are compared against a production matcher.  Here each engine —
Glushkov NFA, NBVA with counters, Shift-And over linearized patterns, and
the Thompson reference oracle — must agree on the exact set of match end
positions for randomized regexes and inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import build_automaton
from repro.automata.lnfa import LNFA
from repro.automata.nbva import NBVASimulator
from repro.automata.nfa import NFASimulator
from repro.automata.reference import ReferenceMatcher
from repro.automata.shift_and import MultiShiftAnd
from repro.regex.parser import parse
from repro.regex.rewrite import (
    linearize,
    make_countable,
    rewrite_bounds_for_bv,
    unfold,
    unfold_all,
)

from tests.helpers import inputs, regex_trees


def nfa_matches(tree, data):
    return NFASimulator(build_automaton(unfold_all(tree))).find_matches(data)


def nbva_matches(tree, data, threshold=2, depth=4):
    regex = rewrite_bounds_for_bv(
        make_countable(unfold(tree, threshold)),
        depth=depth,
        word_align_exact=False,
    )
    return NBVASimulator(build_automaton(regex)).find_matches(data)


def reference_matches(tree, data):
    return ReferenceMatcher(tree).find_matches(data)


def lnfa_matches(tree, data):
    lin = linearize(tree, max_states=512)
    if lin is None or not lin.sequences:
        return None
    packed = MultiShiftAnd([LNFA(seq) for seq in lin.sequences])
    return sorted({end for _, end in packed.find_matches(data)})


@settings(max_examples=120, deadline=None)
@given(regex_trees(max_leaves=8, max_bound=4), inputs(max_size=20))
def test_nfa_equals_reference(tree, data):
    assert nfa_matches(tree, data) == reference_matches(tree, data)


@settings(max_examples=120, deadline=None)
@given(regex_trees(max_leaves=8, max_bound=5), inputs(max_size=20))
def test_nbva_equals_reference(tree, data):
    assert nbva_matches(tree, data) == reference_matches(tree, data)


@settings(max_examples=100, deadline=None)
@given(
    regex_trees(max_leaves=6, with_unbounded=False, max_bound=3),
    inputs(max_size=16),
)
def test_lnfa_equals_reference_when_linearizable(tree, data):
    got = lnfa_matches(tree, data)
    if got is None:
        return  # not linearizable; nothing to compare
    assert got == reference_matches(tree, data)


@settings(max_examples=60, deadline=None)
@given(
    regex_trees(max_leaves=6, max_bound=4),
    inputs(max_size=16),
    st.sampled_from([1, 2, 3, 8]),
    st.sampled_from([2, 4, 16]),
)
def test_nbva_invariant_to_threshold_and_depth(tree, data, threshold, depth):
    """Compiler parameters change cost, never the language."""
    expected = reference_matches(tree, data)
    assert nbva_matches(tree, data, threshold, depth) == expected


@settings(max_examples=120, deadline=None)
@given(regex_trees(max_leaves=8, max_bound=6), inputs(max_size=20))
def test_expanded_builder_equals_reference(tree, data):
    """The NFA path's structural repetition expansion is exact."""
    auto = build_automaton(tree, counters=False)
    got = NFASimulator(auto).find_matches(data)
    assert got == reference_matches(tree, data)


def test_expanded_builder_handles_huge_bounds_without_recursion():
    """ClamAV-scale bounds build iteratively (no deep AST, linear edges)."""
    tree = parse("ab[0-9a-f]{25,985}c")
    auto = build_automaton(tree, counters=False)
    assert auto.state_count == 2 + 985 + 1
    assert len(auto.edges) <= 3 * auto.state_count
    data = b"ab" + b"7" * 500 + b"c"
    assert NFASimulator(auto).find_matches(data) == [len(data) - 1]
