"""NBVA simulator tests: counting semantics, overflow, and equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import build_automaton
from repro.automata.nbva import NBVASimulator, NBVAStats
from repro.automata.nfa import NFASimulator
from repro.regex.parser import parse
from repro.regex.rewrite import rewrite_bounds_for_bv, unfold, unfold_all

from tests.helpers import inputs


def nbva(pattern: str, threshold: int = 2, depth: int = 4) -> NBVASimulator:
    regex = rewrite_bounds_for_bv(
        unfold(parse(pattern), threshold), depth=depth, word_align_exact=False
    )
    return NBVASimulator(build_automaton(regex))


def nfa(pattern: str) -> NFASimulator:
    return NFASimulator(build_automaton(unfold_all(parse(pattern))))


class TestExactCounting:
    def test_simple_count(self):
        assert nbva("a{5}").find_matches(b"aaaaaaa") == [4, 5, 6]

    def test_count_not_reached(self):
        assert nbva("a{5}").find_matches(b"aaaa") == []

    def test_count_reset_on_mismatch(self):
        assert nbva("a{3}").find_matches(b"aaxaaa") == [5]

    def test_prefixed_count(self):
        assert nbva("ba{4}").find_matches(b"baaaaa") == [4]

    def test_paper_example_2_2(self):
        """a.*bc{3}: counting after an unbounded gap."""
        matcher = nbva("a.*bc{3}")
        assert matcher.find_matches(b"axxbccc") == [6]
        assert matcher.find_matches(b"axxbcc") == []
        assert matcher.find_matches(b"abcccbccc") == [4, 8]

    def test_multi_state_body(self):
        """(ab){3} counts iterations of a two-state body."""
        matcher = nbva("(?:ab){3}")
        assert matcher.find_matches(b"ababab") == [5]
        assert matcher.find_matches(b"abababab") == [5, 7]
        assert matcher.find_matches(b"abab") == []

    def test_overflow_deactivates(self):
        """b(a{3})c: too many a's overflow the vector and kill the path."""
        matcher = nbva("ba{3}c")
        assert matcher.find_matches(b"baaac") == [4]
        assert matcher.find_matches(b"baaaac") == []

    def test_overlapping_counts_tracked_as_set(self):
        """Nondeterministic starts: multiple counter values live at once."""
        matcher = nbva("(?:a|b)a{3}x")
        # 'aaaax': starts at 0 (a prefix) and counts from several offsets
        assert matcher.find_matches(b"aaaax") == [4]
        assert matcher.find_matches(b"baaax") == [4]


class TestUptoCounting:
    def test_upto_is_optional(self):
        matcher = nbva("xa{0,3}y")
        for text, expected in [
            (b"xy", [1]),
            (b"xay", [2]),
            (b"xaay", [3]),
            (b"xaaay", [4]),
            (b"xaaaay", []),
        ]:
            assert matcher.find_matches(text) == expected, text

    def test_range_bound(self):
        matcher = nbva("xa{2,4}y")
        assert matcher.find_matches(b"xay") == []
        assert matcher.find_matches(b"xaay") == [3]
        assert matcher.find_matches(b"xaaaay") == [5]
        assert matcher.find_matches(b"xaaaaay") == []

    def test_paper_example_4_2_pattern(self):
        matcher = nbva("ab{10,48}c")
        assert matcher.find_matches(b"a" + b"b" * 10 + b"c") == [11]
        assert matcher.find_matches(b"a" + b"b" * 48 + b"c") == [49]
        assert matcher.find_matches(b"a" + b"b" * 9 + b"c") == []
        assert matcher.find_matches(b"a" + b"b" * 49 + b"c") == []


class TestMixedAutomata:
    def test_fig5_regex(self):
        """b(a{7}|c{5})b from Fig. 5."""
        matcher = nbva("b(?:a{7}|c{5})b")
        assert matcher.find_matches(b"baaaaaaab") == [8]
        assert matcher.find_matches(b"bcccccb") == [6]
        assert matcher.find_matches(b"bccccccb") == []
        assert matcher.find_matches(b"bccccb") == []

    def test_fig3_regex(self):
        """a(.a){3}b from Fig. 3."""
        matcher = nbva("a(?:.a){3}b")
        assert matcher.find_matches(b"axaxaxab") == [7]
        assert matcher.find_matches(b"aaaaaaab") == [7]
        assert matcher.find_matches(b"axaxab") == []

    def test_plain_automaton_accepted(self):
        """NBVASimulator degenerates to NFA simulation without groups."""
        matcher = nbva("ab|cd", threshold=100)
        assert matcher.automaton.is_plain
        assert matcher.find_matches(b"abcd") == [1, 3]

    def test_counted_initial_state(self):
        """A counted group at the very start of the regex."""
        matcher = nbva("a{4}b")
        assert matcher.find_matches(b"aaaab") == [4]
        assert matcher.find_matches(b"xaaaab") == [5]


class TestStats:
    def test_bv_phase_only_when_counters_live(self):
        stats = NBVAStats()
        nbva("za{5}").find_matches(b"xxxxx", stats)
        assert stats.bv_phase_cycles == 0

        stats = NBVAStats()
        nbva("za{5}").find_matches(b"zaaaaa", stats)
        assert stats.bv_phase_cycles == 5
        assert stats.set1_events > 0
        assert stats.shift_events > 0

    def test_overflow_checker_counts(self):
        """Feeding one symbol too many shifts the last live bit out."""
        stats = NBVAStats()
        nbva("ba{3}c").find_matches(b"baaaa", stats)
        assert stats.overflow_events >= 1

        stats = NBVAStats()
        nbva("ba{3}c").find_matches(b"baaac", stats)
        assert stats.overflow_events == 0

    def test_activation_rate(self):
        stats = NBVAStats()
        nbva("za{3}").find_matches(b"zaaa" + b"x" * 12, stats)
        assert 0 < stats.bv_activation_rate < 0.5


# -- equivalence with full unfolding ------------------------------------------

_PATTERNS = [
    "a{5}",
    "xa{3,6}y",
    "(?:ab){4}",
    "b(?:a{7}|c{5})b",
    "a.*bc{3}",
    "a{4}b{3}",
    "(?:a[ab]){3}x",
    "ab{0,5}c",
    "(?:a|b)c{4}",
    "a{8}",
]


@settings(max_examples=150, deadline=None)
@given(st.sampled_from(_PATTERNS), inputs(max_size=20))
def test_nbva_equivalent_to_unfolded_nfa(pattern, data):
    """The counting automaton accepts exactly like the unfolded NFA."""
    assert nbva(pattern).find_matches(data) == nfa(pattern).find_matches(data)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(2, 6),
    st.integers(0, 4),
    inputs(alphabet="ab", max_size=20),
)
def test_random_bounds_equivalent(lo, extra, data):
    pattern = f"b(?:a|b)a{{{lo},{lo + extra}}}b" if extra else f"ba{{{lo}}}b"
    assert nbva(pattern).find_matches(data) == nfa(pattern).find_matches(data)
