"""Fig. 6 bit-serial LNFA datapath tests, including the paper's trace."""

import pytest
from hypothesis import given, settings

from repro.automata.bitserial import BitSerialLNFA, format_trace
from repro.automata.lnfa import LNFA
from repro.automata.shift_and import ShiftAnd
from repro.regex.charclass import CharClass
from repro.regex.parser import parse
from repro.regex.rewrite import linearize

from tests.automata.test_lnfa import lnfa_strategy
from tests.helpers import inputs


def lnfa_of(pattern: str) -> LNFA:
    lin = linearize(parse(pattern), max_states=64)
    assert lin is not None and len(lin.sequences) == 1
    return LNFA(lin.sequences[0])


class TestFig6Walkthrough:
    """The worked example of Fig. 6: a.[bc] over input 'abc'."""

    def setup_method(self):
        self.engine = BitSerialLNFA(lnfa_of("a.[bc]"))

    def test_cycle_by_cycle(self):
        t1, t2, t3 = self.engine.trace(b"abc")
        # cycle 1: input a matches STE1 (and no others of a.[bc]... the
        # wildcard column matches everything, so labels = 110)
        assert f"{t1.labels:03b}" == "110"
        assert f"{t1.next_vector:03b}" == "100"  # only the initial column
        assert f"{t1.states:03b}" == "100"
        assert not t1.report
        # cycle 2: the active vector right-shifted keeps column 2 enabled
        assert f"{t2.next_vector:03b}" == "110"
        assert f"{t2.states:03b}" == "010"
        assert not t2.report
        # cycle 3: c matches the final column -> match report
        assert t3.states & 1
        assert t3.report

    def test_matches(self):
        assert self.engine.find_matches(b"abc") == [2]
        assert self.engine.find_matches(b"ab") == []

    def test_active_columns_follow_the_vector(self):
        (t1, t2, _) = self.engine.trace(b"abc")
        assert self.engine.active_columns(t1.states) == [0]
        assert self.engine.active_columns(t2.states) == [1]


class TestEquivalenceWithClassicShiftAnd:
    @pytest.mark.parametrize(
        "pattern,data",
        [
            ("a[bc].d", b"abcdabxdzacd"),
            ("ana", b"banana"),
            ("a", b"aaaa"),
            ("abc", b"xxabcxabc"),
        ],
    )
    def test_same_matches(self, pattern, data):
        seq = lnfa_of(pattern)
        assert BitSerialLNFA(seq).find_matches(data) == ShiftAnd(
            seq
        ).find_matches(data)

    def test_anchored_variants(self):
        seq = lnfa_of("ab")
        data = b"abab"
        assert BitSerialLNFA(seq, anchored_start=True).find_matches(
            data
        ) == ShiftAnd(seq).find_matches(data, anchored_start=True)
        assert BitSerialLNFA(seq).find_matches(
            data, anchored_end=True
        ) == ShiftAnd(seq).find_matches(data, anchored_end=True)


class TestFormatTrace:
    def test_renders_all_rows(self):
        text = format_trace(lnfa_of("a.[bc]"), b"abc")
        for row in ("input", "labels", "next", "states", "report"):
            assert row in text

    def test_nonprintable_symbols_escaped(self):
        text = format_trace(LNFA((CharClass.any(),)), bytes([0]))
        assert "\\x00" in text


@settings(max_examples=100, deadline=None)
@given(lnfa_strategy(), inputs(max_size=24))
def test_bit_serial_equals_classic_everywhere(auto, data):
    """The mirrored hardware datapath is exactly the Shift-And language."""
    assert BitSerialLNFA(auto).find_matches(data) == ShiftAnd(
        auto
    ).find_matches(data)
