"""Tests for the Glushkov construction with counter groups."""

import pytest
from hypothesis import given

from repro.automata.glushkov import (
    EdgeAction,
    GlushkovError,
    ReadKind,
    build_automaton,
)
from repro.regex.parser import parse
from repro.regex.rewrite import rewrite_bounds_for_bv, unfold, unfold_all

from tests.helpers import regex_trees


def build(pattern: str):
    return build_automaton(parse(pattern))


def build_nbva(pattern: str, threshold: int = 4, depth: int = 4):
    regex = rewrite_bounds_for_bv(
        unfold(parse(pattern), threshold), depth=depth, word_align_exact=False
    )
    return build_automaton(regex)


class TestPlainConstruction:
    def test_paper_example_2_1(self):
        """a([bc]|b.*d) has 5 states and is homogeneous."""
        auto = build("a(?:[bc]|b.*d)")
        assert auto.state_count == 5
        assert auto.is_plain
        # q0 is the only initial state; q1 ([bc]) and q4 (d) are final.
        assert auto.initial == {0}
        final_ccs = sorted(
            auto.positions[pid].cc.to_pattern() for pid in auto.finals
        )
        assert final_ccs == ["[bc]", "d"]

    def test_homogeneity(self):
        """All transitions into one state carry that state's class."""
        auto = build("a(?:[bc]|b.*d)")
        for edge in auto.edges:
            assert auto.positions[edge.dst].cc == auto.positions[edge.dst].cc

    def test_single_literal(self):
        auto = build("a")
        assert auto.state_count == 1
        assert auto.initial == {0} and auto.finals == {0}
        assert auto.edges == ()

    def test_concat_chain(self):
        auto = build("abc")
        assert auto.state_count == 3
        assert {(e.src, e.dst) for e in auto.edges} == {(0, 1), (1, 2)}

    def test_alt_initials_and_finals(self):
        auto = build("ab|cd")
        assert auto.initial == {0, 2}
        assert auto.finals == {1, 3}

    def test_star_loop(self):
        auto = build("ab*c")
        edges = {(e.src, e.dst) for e in auto.edges}
        assert (1, 1) in edges  # b self-loop
        assert (0, 2) in edges  # skip over nullable b*
        assert (0, 1) in edges and (1, 2) in edges

    def test_nullable_chain_skip(self):
        auto = build("ab?c?d")
        edges = {(e.src, e.dst) for e in auto.edges}
        assert (0, 3) in edges  # a -> d skipping both optionals
        assert (0, 1) in edges and (0, 2) in edges

    def test_nullable_flag(self):
        assert build("a*").nullable
        assert not build("a+").nullable

    def test_empty_language(self):
        from repro.regex.ast import EMPTY

        auto = build_automaton(EMPTY)
        assert auto.state_count == 0
        assert not auto.initial and not auto.finals

    def test_plus_loop(self):
        auto = build("a+")
        assert {(e.src, e.dst) for e in auto.edges} == {(0, 0)}

    def test_all_edges_activate_when_plain(self):
        auto = build("a(?:b|c)*d")
        assert all(e.action is EdgeAction.ACTIVATE for e in auto.edges)

    def test_unfolded_repeat_is_plain(self):
        auto = build_automaton(unfold_all(parse("a{5}")))
        assert auto.is_plain
        assert auto.state_count == 5


class TestCounterGroups:
    def test_single_cc_group(self):
        """c{5}: one counted position with a self shift loop."""
        auto = build_nbva("a.*bc{5}")
        assert len(auto.groups) == 1
        group = auto.groups[0]
        assert group.width == 5
        assert group.read is ReadKind.EXACT
        assert group.read_bound == 5
        assert len(group.positions) == 1
        pid = group.positions[0]
        shift_edges = [
            (e.src, e.dst) for e in auto.edges if e.action is EdgeAction.SHIFT
        ]
        assert shift_edges == [(pid, pid)]

    def test_set1_on_entry(self):
        auto = build_nbva("ab{9}")
        set1 = [e for e in auto.edges if e.action is EdgeAction.SET1]
        assert len(set1) == 1
        assert auto.positions[set1[0].src].group is None
        assert auto.positions[set1[0].dst].group == 0

    def test_upto_group_is_rall(self):
        auto = build_nbva("ab{0,9}c")
        group = auto.groups[0]
        assert group.read is ReadKind.ALL
        assert group.width == 9

    def test_range_bound_splits_into_two_groups(self):
        auto = build_nbva("ab{10,48}c")
        reads = sorted(g.read.value for g in auto.groups)
        assert reads == ["r(m)", "rAll"]
        widths = sorted(g.width for g in auto.groups)
        assert widths == [10, 38]

    def test_multi_state_body_copy_and_shift(self):
        auto = build_nbva("(?:ab){7}")
        group = auto.groups[0]
        assert len(group.positions) == 2
        actions = {e.action for e in auto.edges}
        assert EdgeAction.COPY in actions and EdgeAction.SHIFT in actions

    def test_plus_body_has_copy_and_shift_on_same_pair(self):
        """(ab)+{3}-style bodies need both actions between the same states."""
        regex = parse("(?:a+){3}")
        # a+ is not nullable, so this is counting-compatible
        auto = build_automaton(regex)
        pairs = {(e.src, e.dst, e.action) for e in auto.edges}
        pid = auto.groups[0].positions[0]
        assert (pid, pid, EdgeAction.COPY) in pairs
        assert (pid, pid, EdgeAction.SHIFT) in pairs

    def test_counted_final_state(self):
        auto = build_nbva("ab{9}")
        (final,) = auto.finals
        assert auto.positions[final].is_counted

    def test_nested_groups_rejected(self):
        with pytest.raises(GlushkovError):
            build_automaton(parse("(?:a{9}b){9}"))

    def test_nullable_body_rejected(self):
        with pytest.raises(GlushkovError):
            build_automaton(parse("(?:a*){0,9}"))

    def test_unbounded_repeat_rejected(self):
        with pytest.raises(GlushkovError):
            build_automaton(parse("a{3,}"))

    def test_unrewritten_range_rejected(self):
        with pytest.raises(GlushkovError):
            build_automaton(parse("a{3,9}"))

    def test_group_positions_count_toward_state_count(self):
        auto = build_nbva("ab{100}c")
        assert auto.state_count == 3  # a, b (counted), c

    def test_validate_passes(self):
        build_nbva("ab{10,48}cd{34}ef{128}", depth=16).validate()


@given(regex_trees(max_leaves=10))
def test_construction_state_count_matches_unfolded_size(tree):
    """Fully unfolded Glushkov automata have one state per position."""
    unfolded = unfold_all(tree)
    auto = build_automaton(unfolded)
    assert auto.state_count == unfolded.literal_count()
    assert auto.is_plain
    auto.validate()


@given(regex_trees(max_leaves=8))
def test_initials_and_finals_are_valid_positions(tree):
    auto = build_automaton(unfold_all(tree))
    n = auto.state_count
    assert all(0 <= pid < n for pid in auto.initial)
    assert all(0 <= pid < n for pid in auto.finals)
