"""Anchored-pattern semantics across every engine.

``^`` makes the initial states start-of-data STEs (available only for
the first symbol); ``$`` restricts reporting to matches that consume the
final symbol.  Every engine must implement both identically.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import build_automaton
from repro.automata.lnfa import LNFA
from repro.automata.nbva import NBVASimulator
from repro.automata.nfa import NFASimulator
from repro.automata.reference import ReferenceMatcher
from repro.automata.shift_and import MultiShiftAnd, ShiftAnd
from repro.compiler import CompilerConfig, compile_ruleset
from repro.regex.charclass import CharClass
from repro.regex.parser import parse, parse_anchored
from repro.simulators import RAPSimulator

from tests.helpers import inputs, regex_trees


def re_anchored_ends(pattern: str, text: str) -> list[int]:
    """Oracle: end positions under ^/$ semantics via Python's re."""
    parsed = parse_anchored(pattern)
    body = re.compile(parsed.regex.to_pattern())
    out = []
    for end in range(len(text)):
        starts = [0] if parsed.anchored_start else range(end + 1)
        if parsed.anchored_end and end != len(text) - 1:
            continue
        if any(body.fullmatch(text, s, end + 1) for s in starts):
            out.append(end)
    return out


class TestNFAAnchors:
    def matcher(self, pattern):
        return NFASimulator(build_automaton(parse(pattern)))

    def test_start_anchor(self):
        m = self.matcher("ab")
        assert m.find_matches(b"abab", anchored_start=True) == [1]
        assert m.find_matches(b"xab", anchored_start=True) == []

    def test_end_anchor(self):
        m = self.matcher("ab")
        assert m.find_matches(b"abab", anchored_end=True) == [3]
        assert m.find_matches(b"abx", anchored_end=True) == []

    def test_both_anchors(self):
        m = self.matcher("ab")
        assert m.find_matches(
            b"ab", anchored_start=True, anchored_end=True
        ) == [1]
        assert m.find_matches(
            b"abab", anchored_start=True, anchored_end=True
        ) == []

    def test_star_with_start_anchor(self):
        m = self.matcher("ab*c")
        assert m.find_matches(b"abbc", anchored_start=True) == [3]
        assert m.find_matches(b"xabbc", anchored_start=True) == []


class TestNBVAAnchors:
    def test_start_anchor(self):
        m = NBVASimulator(build_automaton(parse("a{9}")))
        assert m.find_matches(b"a" * 12, anchored_start=True) == [8]
        assert m.find_matches(b"xa" + b"a" * 12, anchored_start=True) == []

    def test_end_anchor(self):
        m = NBVASimulator(build_automaton(parse("ba{3}")))
        assert m.find_matches(b"baaaa", anchored_end=True) == []
        assert m.find_matches(b"xbaaa", anchored_end=True) == [4]


class TestShiftAndAnchors:
    def test_single(self):
        m = ShiftAnd(LNFA((CharClass.of("a"), CharClass.of("b"))))
        assert m.find_matches(b"abab", anchored_start=True) == [1]
        assert m.find_matches(b"abab", anchored_end=True) == [3]

    def test_multi_mixed_anchors(self):
        ab = LNFA((CharClass.of("a"), CharClass.of("b")))
        cd = LNFA((CharClass.of("c"), CharClass.of("d")))
        packed = MultiShiftAnd(
            [ab, cd], anchors=[(True, False), (False, False)]
        )
        hits = packed.find_matches(b"abcdab")
        assert (0, 1) in hits  # anchored ab at the start
        assert (0, 5) not in hits  # later ab suppressed
        assert (1, 3) in hits  # unanchored cd still matches

    def test_anchored_leak_masked(self):
        """A start-anchored pattern's first bit must not receive the
        packed shift leak from its predecessor pattern."""
        ab = LNFA((CharClass.of("a"), CharClass.of("b")))
        bb = LNFA((CharClass.of("b"), CharClass.of("c")))
        packed = MultiShiftAnd(
            [ab, bb], anchors=[(False, False), (True, False)]
        )
        # 'ab' matching at 1 shifts toward bb's first bit at step 2; bb is
        # anchored so 'abc' must NOT report bb at position 2.
        assert (1, 2) not in packed.find_matches(b"abc")

    def test_anchor_list_validated(self):
        ab = LNFA((CharClass.of("a"),))
        with pytest.raises(ValueError):
            MultiShiftAnd([ab], anchors=[(False, False), (True, True)])


class TestReferenceAnchors:
    @pytest.mark.parametrize(
        "pattern,text",
        [
            ("^ab", "abab"),
            ("ab$", "abab"),
            ("^ab$", "ab"),
            ("^ab$", "abab"),
            ("^a+b", "aabxaab"),
            ("a[bc]$", "zacab"),
        ],
    )
    def test_against_re(self, pattern, text):
        parsed = parse_anchored(pattern)
        matcher = ReferenceMatcher(
            parsed.regex,
            anchored_start=parsed.anchored_start,
            anchored_end=parsed.anchored_end,
        )
        assert matcher.find_matches(text.encode()) == re_anchored_ends(
            pattern, text
        )


class TestCompiledAnchors:
    def test_flags_compiled(self):
        ruleset = compile_ruleset(["^abc", "abc$", "^abc$", "abc"])
        flags = [(r.anchored_start, r.anchored_end) for r in ruleset]
        assert flags == [
            (True, False),
            (False, True),
            (True, True),
            (False, False),
        ]

    @pytest.mark.parametrize(
        "pattern", ["^ab{20}c", "^a[bc]d", "^ab*c", "ab{20}c$", "a[bc]d$"]
    )
    def test_rap_honours_anchors(self, pattern):
        data = b"xx a" + b"b" * 20 + b"c abd acd " + b"a" + b"b" * 20 + b"c"
        ruleset = compile_ruleset([pattern], CompilerConfig(bv_depth=4))
        result = RAPSimulator().run(ruleset, data)
        parsed = parse_anchored(pattern)
        expected = ReferenceMatcher(
            parsed.regex,
            anchored_start=parsed.anchored_start,
            anchored_end=parsed.anchored_end,
        ).find_matches(data)
        assert result.matches[0] == expected, pattern

    def test_anchored_lnfa_through_bins(self):
        data = b"abc xyz abc"
        ruleset = compile_ruleset(["^abc", "xyz"], CompilerConfig())
        result = RAPSimulator().run(ruleset, data, bin_size=2)
        assert result.matches[0] == [2]  # only the start occurrence
        assert result.matches[1] == [6]

    def test_serialization_preserves_anchors(self, tmp_path):
        from repro.io.serialize import load_ruleset, save_ruleset

        ruleset = compile_ruleset(["^ab{12}c$"], CompilerConfig(bv_depth=4))
        restored = load_ruleset(save_ruleset(ruleset, tmp_path / "r.json"))
        assert restored.regexes[0].anchored_start
        assert restored.regexes[0].anchored_end


@settings(max_examples=60, deadline=None)
@given(
    regex_trees(max_leaves=6, max_bound=3),
    inputs(max_size=14),
    st.booleans(),
    st.booleans(),
)
def test_all_engines_agree_on_anchored_semantics(tree, data, a_start, a_end):
    """NFA engine vs reference oracle under every anchor combination."""
    reference = ReferenceMatcher(
        tree, anchored_start=a_start, anchored_end=a_end
    )
    from repro.regex.rewrite import unfold_all

    engine = NFASimulator(build_automaton(unfold_all(tree)))
    got = engine.find_matches(data, anchored_start=a_start, anchored_end=a_end)
    assert got == reference.find_matches(data)
