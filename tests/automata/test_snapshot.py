"""Snapshot/restore round-trip properties for every execution model.

The durable-scan invariant: feeding a stream in arbitrary segments —
with the scanner's full state serialized to JSON and restored into a
*fresh* scanner between every segment — produces exactly the matches
and stats of one uninterrupted whole-stream run, on every backend.
Checkpoint/resume correctness reduces to this property.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import build_automaton
from repro.automata.nbva import NBVASimulator, NBVAStats
from repro.automata.nfa import NFASimulator, StepStats
from repro.automata.shift_and import MultiShiftAnd, ShiftAnd, ShiftAndStats
from repro.compiler import compile_pattern
from repro.core import available_backends, use_backend
from repro.regex.parser import parse
from repro.regex.rewrite import unfold_all

from tests.automata.test_lnfa import lnfa_strategy
from tests.helpers import inputs, regex_trees

BACKENDS = available_backends()

anchor_flags = st.booleans()
# Random cut points, mapped into [0, len(data)] per example.
cut_seeds = st.lists(st.integers(0, 10_000), max_size=6)


def segments_of(data: bytes, seeds: list[int]) -> list[bytes]:
    """Split ``data`` at pseudo-random cut points derived from seeds."""
    cuts = sorted({s % (len(data) + 1) for s in seeds})
    bounds = [0, *cuts, len(data)]
    return [data[a:b] for a, b in zip(bounds, bounds[1:])]


def roundtrip(scanner, doc_factory):
    """Serialize a scanner's snapshot through real JSON and restore it
    into a brand-new scanner instance (what a resumed process does)."""
    doc = json.loads(json.dumps(scanner.snapshot()))
    fresh = doc_factory()
    fresh.restore(doc)
    return fresh


class TestNFAScanner:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=60, deadline=None)
    @given(
        regex_trees(max_leaves=6),
        inputs(max_size=24),
        anchor_flags,
        anchor_flags,
        cut_seeds,
    )
    def test_segmented_roundtrip_equals_whole(
        self, backend, tree, data, astart, aend, seeds
    ):
        sim = NFASimulator(build_automaton(unfold_all(tree)))
        anchors = dict(anchored_start=astart, anchored_end=aend)
        with use_backend(backend):
            ref_stats = StepStats()
            ref = sim.find_matches(data, ref_stats, **anchors)
            scanner = sim.scanner(**anchors)
            stats = StepStats()
            matches = []
            n = len(data)
            consumed = 0
            for segment in segments_of(data, seeds):
                consumed += len(segment)
                matches.extend(
                    scanner.feed(segment, stats, at_end=(consumed == n))
                )
                scanner = roundtrip(scanner, lambda: sim.scanner(**anchors))
        assert matches == ref
        assert stats == ref_stats

    def test_restore_rejects_garbage(self):
        sim = NFASimulator(build_automaton(unfold_all(parse("abc"))))
        scanner = sim.scanner()
        with pytest.raises(ValueError):
            scanner.restore({"nonsense": 1})
        with pytest.raises(ValueError):
            scanner.restore({"version": 999, "offset": 0, "states": "0"})


class TestShiftAndScanner:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=60, deadline=None)
    @given(
        lnfa_strategy(),
        inputs(max_size=20),
        anchor_flags,
        anchor_flags,
        cut_seeds,
    )
    def test_segmented_roundtrip_equals_whole(
        self, backend, lnfa, data, astart, aend, seeds
    ):
        machine = ShiftAnd(lnfa)
        anchors = dict(anchored_start=astart, anchored_end=aend)
        with use_backend(backend):
            ref_stats = ShiftAndStats()
            ref = machine.find_matches(data, ref_stats, **anchors)
            scanner = machine.scanner(**anchors)
            stats = ShiftAndStats()
            matches = []
            n = len(data)
            consumed = 0
            for segment in segments_of(data, seeds):
                consumed += len(segment)
                matches.extend(
                    scanner.feed(segment, stats, at_end=(consumed == n))
                )
                scanner = roundtrip(
                    scanner, lambda: machine.scanner(**anchors)
                )
        assert matches == ref
        assert stats == ref_stats


class TestMultiShiftAndScanner:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(lnfa_strategy(max_len=4), min_size=1, max_size=5),
        st.lists(st.tuples(anchor_flags, anchor_flags), min_size=5, max_size=5),
        inputs(max_size=16),
        cut_seeds,
    )
    def test_segmented_roundtrip_equals_whole(
        self, backend, lnfas, anchor_list, data, seeds
    ):
        packed = MultiShiftAnd(lnfas, anchors=anchor_list[: len(lnfas)])
        with use_backend(backend):
            ref_stats = ShiftAndStats()
            ref = packed.find_matches(data, ref_stats)
            scanner = packed.scanner()
            stats = ShiftAndStats()
            matches = []
            n = len(data)
            consumed = 0
            for segment in segments_of(data, seeds):
                consumed += len(segment)
                matches.extend(
                    scanner.feed(segment, stats, at_end=(consumed == n))
                )
                scanner = roundtrip(scanner, packed.scanner)
        assert matches == ref
        assert stats == ref_stats


NBVA_PATTERNS = ["ab{10,20}c", "x.{4,9}y", "a+b{12,}c"]


class TestNBVAScanner:
    @pytest.mark.parametrize("pattern", NBVA_PATTERNS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=25, deadline=None)
    @given(
        inputs(alphabet="abcxy", max_size=40),
        anchor_flags,
        anchor_flags,
        cut_seeds,
    )
    def test_segmented_roundtrip_equals_whole(
        self, pattern, backend, data, astart, aend, seeds
    ):
        compiled = compile_pattern(pattern, 0)
        sim = NBVASimulator(compiled.automaton)
        anchors = dict(anchored_start=astart, anchored_end=aend)
        with use_backend(backend):
            ref_stats = NBVAStats(bv_cycle_indices=[])
            ref = sim.find_matches(data, ref_stats, **anchors)
            scanner = sim.scanner(**anchors)
            stats = NBVAStats(bv_cycle_indices=[])
            matches = []
            n = len(data)
            consumed = 0
            for segment in segments_of(data, seeds):
                consumed += len(segment)
                matches.extend(
                    scanner.feed(segment, stats, at_end=(consumed == n))
                )
                scanner = roundtrip(scanner, lambda: sim.scanner(**anchors))
        assert matches == ref
        # Full stats equality including per-cycle BV indices: the
        # counter vectors round-tripped bit for bit.
        assert dataclasses.asdict(stats) == dataclasses.asdict(ref_stats)

    def test_restore_rejects_wrong_offset_resume(self):
        compiled = compile_pattern("ab{10,20}c", 0)
        sim = NBVASimulator(compiled.automaton)
        scanner = sim.scanner()
        scanner.feed(b"abbbb", at_end=False)
        doc = scanner.snapshot()
        doc["version"] = 999
        with pytest.raises(ValueError):
            sim.scanner().restore(doc)
