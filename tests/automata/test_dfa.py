"""Subset-construction DFA tests: oracle equivalence and the blowup claim."""

import pytest
from hypothesis import given, settings

from repro.automata.dfa import DFA, DFABlowupError, determinize
from repro.automata.glushkov import build_automaton
from repro.automata.nfa import NFASimulator
from repro.automata.reference import ReferenceMatcher
from repro.regex.parser import parse

from tests.helpers import inputs, regex_trees


def dfa_of(pattern: str, max_states: int = 1 << 16) -> DFA:
    return determinize(
        build_automaton(parse(pattern), counters=False), max_states=max_states
    )


class TestBasics:
    def test_literal(self):
        assert dfa_of("ana").find_matches(b"banana") == [3, 5]

    def test_alternation(self):
        assert dfa_of("an|na").find_matches(b"banana") == [2, 3, 4, 5]

    def test_star(self):
        assert dfa_of("ab*c").find_matches(b"abbbc ac") == [4, 7]

    def test_counted_automata_rejected(self):
        counted = build_automaton(parse("a{40}"))
        with pytest.raises(ValueError):
            determinize(counted)

    def test_state_count_reasonable_for_literals(self):
        dfa = dfa_of("abcde")
        assert dfa.state_count <= 6 + 1  # one per prefix, plus sink-ish

    def test_count_matches(self):
        assert dfa_of("aa").count_matches(b"aaaa") == 3


class TestBlowup:
    def test_classic_exponential_family(self):
        """a.{n}b needs ~2^n DFA states (the n-th-from-last construction):
        the Section 2.1 motivation, executable."""
        small = dfa_of("a.{4}b")
        assert small.state_count > 2**4
        with pytest.raises(DFABlowupError) as err:
            dfa_of("a.{18}b", max_states=4096)
        assert err.value.budget == 4096

    def test_blowup_grows_with_bound(self):
        sizes = [dfa_of(f"a.{{{n}}}b").state_count for n in (3, 5, 7)]
        assert sizes[0] < sizes[1] < sizes[2]
        # roughly doubling per extra gap symbol
        assert sizes[2] > 3 * sizes[1] / 2

    def test_nbva_sidesteps_the_blowup(self):
        """The same pattern the DFA cannot afford costs the NBVA a single
        counted state — the whole reason RAP has an NBVA mode."""
        from repro.automata.glushkov import build_automaton as build

        counted = build(parse("a.{60}b"))
        assert counted.state_count == 3  # a, gap (counted), b
        with pytest.raises(DFABlowupError):
            dfa_of("a.{60}b", max_states=1 << 15)


@settings(max_examples=60, deadline=None)
@given(regex_trees(max_leaves=6, max_bound=3), inputs(max_size=18))
def test_dfa_is_a_third_oracle(tree, data):
    auto = build_automaton(tree, counters=False)
    try:
        dfa = determinize(auto, max_states=1 << 12)
    except DFABlowupError:
        return
    assert dfa.find_matches(data) == NFASimulator(auto).find_matches(data)
    assert dfa.find_matches(data) == ReferenceMatcher(tree).find_matches(data)
