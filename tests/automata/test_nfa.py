"""NFA simulator tests against hand-computed and re-derived oracles."""

import pytest
from hypothesis import given, settings

from repro.automata.glushkov import build_automaton
from repro.automata.nfa import NFASimulator, StepStats
from repro.regex.parser import parse
from repro.regex.rewrite import unfold_all

from tests.helpers import inputs, re_end_positions, regex_trees


def sim(pattern: str) -> NFASimulator:
    return NFASimulator(build_automaton(unfold_all(parse(pattern))))


class TestBasicMatching:
    def test_single_char(self):
        assert sim("a").find_matches(b"banana") == [1, 3, 5]

    def test_literal_word(self):
        assert sim("ana").find_matches(b"banana") == [3, 5]

    def test_no_match(self):
        assert sim("xyz").find_matches(b"banana") == []

    def test_empty_input(self):
        assert sim("a").find_matches(b"") == []

    def test_alternation(self):
        assert sim("an|na").find_matches(b"banana") == [2, 3, 4, 5]

    def test_dot_star_semantics(self):
        """a.*d reports at every d after the first a."""
        assert sim("a.*d").find_matches(b"xaxdxdx") == [3, 5]

    def test_paper_example_2_1(self):
        """a([bc]|b.*d) from the paper."""
        matcher = sim("a(?:[bc]|b.*d)")
        assert matcher.find_matches(b"ab") == [1]
        assert matcher.find_matches(b"ac") == [1]
        assert matcher.find_matches(b"abxxd") == [1, 4]
        assert matcher.find_matches(b"ad") == []

    def test_overlapping_matches(self):
        assert sim("aa").find_matches(b"aaaa") == [1, 2, 3]

    def test_unanchored_restart(self):
        assert sim("ab").find_matches(b"aab") == [2]

    def test_nullable_regex_reports_no_empty_match(self):
        assert sim("a*").find_matches(b"bbb") == []
        assert sim("a*").find_matches(b"aba") == [0, 2]

    def test_unfolded_bounded_repetition(self):
        assert sim("a{3}").find_matches(b"aaaaa") == [2, 3, 4]

    def test_bounded_range_unfolded(self):
        matcher = sim("ba{1,3}")
        assert matcher.find_matches(b"baaaa") == [1, 2, 3]

    def test_charclass(self):
        assert sim("[ab]x").find_matches(b"axbxcx") == [1, 3]

    def test_byte_alphabet(self):
        matcher = sim("\\x00\\xff")
        assert matcher.find_matches(bytes([0, 255, 0, 255])) == [1, 3]

    def test_rejects_counted_automaton(self):
        from repro.automata.glushkov import build_automaton as build

        counted = build(parse("a{9}"))
        with pytest.raises(ValueError):
            NFASimulator(counted)


class TestStats:
    def test_cycle_count(self):
        stats = StepStats()
        sim("ab").find_matches(b"abab", stats)
        assert stats.cycles == 4

    def test_report_count(self):
        stats = StepStats()
        sim("a").find_matches(b"aaa", stats)
        assert stats.reports == 3

    def test_active_states_positive_on_matches(self):
        stats = StepStats()
        sim("ab").find_matches(b"abab", stats)
        assert stats.active_states >= 4
        assert stats.mean_active > 0

    def test_stats_zero_on_empty_input(self):
        stats = StepStats()
        sim("ab").find_matches(b"", stats)
        assert stats.cycles == 0
        assert stats.mean_active == 0.0


@settings(max_examples=60, deadline=None)
@given(regex_trees(max_leaves=7, max_bound=3), inputs(max_size=16))
def test_nfa_agrees_with_python_re(tree, data):
    """Glushkov + bitset simulation matches the re-derived oracle."""
    unfolded = unfold_all(tree)
    expected = re_end_positions(unfolded.to_pattern(), data.decode("ascii"))
    matcher = NFASimulator(build_automaton(unfolded))
    assert matcher.find_matches(data) == expected
