"""Unit and property tests for character classes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.regex import charclass
from repro.regex.charclass import (
    ALPHABET_SIZE,
    DIGITS,
    SPACE,
    WORD,
    CharClass,
)

byte_values = st.integers(min_value=0, max_value=ALPHABET_SIZE - 1)
byte_sets = st.frozensets(byte_values, max_size=40)


def cc_of(values) -> CharClass:
    return CharClass.from_iterable(values)


class TestConstruction:
    def test_empty_matches_nothing(self):
        empty = CharClass.empty()
        assert empty.is_empty()
        assert len(empty) == 0
        assert not any(empty.matches(b) for b in range(ALPHABET_SIZE))

    def test_any_matches_everything(self):
        any_cc = CharClass.any()
        assert any_cc.is_any()
        assert len(any_cc) == ALPHABET_SIZE
        assert all(any_cc.matches(b) for b in range(ALPHABET_SIZE))

    def test_of_accepts_mixed_symbol_types(self):
        cc = CharClass.of("a", 0x62, b"c")
        assert sorted(cc) == [ord("a"), ord("b"), ord("c")]

    def test_range_inclusive(self):
        cc = CharClass.range("a", "e")
        assert sorted(cc) == [ord(c) for c in "abcde"]

    def test_range_single(self):
        assert CharClass.range("x", "x") == CharClass.of("x")

    def test_range_rejects_inverted(self):
        with pytest.raises(ValueError):
            CharClass.range("z", "a")

    def test_of_rejects_multichar_string(self):
        with pytest.raises(ValueError):
            CharClass.of("ab")

    def test_of_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            CharClass.of(256)
        with pytest.raises(ValueError):
            CharClass.of(-1)

    def test_mask_bounds_checked(self):
        with pytest.raises(ValueError):
            CharClass(1 << ALPHABET_SIZE)
        with pytest.raises(ValueError):
            CharClass(-1)

    def test_union_all_empty_iterable(self):
        assert CharClass.union_all([]) == CharClass.empty()

    def test_union_all(self):
        parts = [CharClass.of("a"), CharClass.of("b"), CharClass.of("a")]
        assert CharClass.union_all(parts) == CharClass.of("a", "b")


class TestPredicates:
    def test_singleton(self):
        assert CharClass.of("x").is_singleton()
        assert not CharClass.of("x", "y").is_singleton()
        assert not CharClass.empty().is_singleton()

    def test_sample_smallest_member(self):
        assert CharClass.of("c", "a", "b").sample() == ord("a")

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            CharClass.empty().sample()

    def test_contains(self):
        cc = CharClass.of("a")
        assert "a" in cc
        assert ord("a") in cc
        assert b"a" in cc
        assert "b" not in cc
        assert None not in cc

    def test_issubset(self):
        assert CharClass.of("a").issubset(CharClass.range("a", "z"))
        assert not CharClass.of("A").issubset(CharClass.range("a", "z"))

    def test_overlaps(self):
        assert CharClass.range("a", "m").overlaps(CharClass.range("m", "z"))
        assert not CharClass.range("a", "l").overlaps(CharClass.range("m", "z"))

    def test_bool(self):
        assert CharClass.of("a")
        assert not CharClass.empty()


class TestRanges:
    def test_ranges_round_trip(self):
        cc = CharClass.of("a", "b", "c", "x", "z")
        assert cc.ranges() == [
            (ord("a"), ord("c")),
            (ord("x"), ord("x")),
            (ord("z"), ord("z")),
        ]

    def test_ranges_full(self):
        assert CharClass.any().ranges() == [(0, 255)]

    def test_ranges_empty(self):
        assert CharClass.empty().ranges() == []


class TestNamedClasses:
    def test_digits(self):
        assert sorted(DIGITS) == [ord(c) for c in "0123456789"]

    def test_word_contains_underscore_and_alnum(self):
        for ch in "azAZ09_":
            assert WORD.matches(ch)
        assert not WORD.matches("-")

    def test_space(self):
        for ch in " \t\n\r\x0b\x0c":
            assert SPACE.matches(ch)
        assert not SPACE.matches("a")


class TestPatternRendering:
    def test_any_renders_dot(self):
        assert CharClass.any().to_pattern() == "."

    def test_singleton_renders_bare(self):
        assert CharClass.of("a").to_pattern() == "a"

    def test_singleton_metachar_escaped(self):
        assert CharClass.of(".").to_pattern() == "\\."
        assert CharClass.of("*").to_pattern() == "\\*"

    def test_range_renders_brackets(self):
        assert CharClass.range("a", "e").to_pattern() == "[a-e]"

    def test_large_class_renders_negated(self):
        cc = ~CharClass.of("a")
        assert cc.to_pattern() == "[^a]"

    def test_nonprintable_rendered_as_hex(self):
        assert CharClass.of(0).to_pattern() == "\\x00"


@given(byte_sets, byte_sets)
def test_union_is_set_union(a, b):
    assert set(cc_of(a) | cc_of(b)) == a | b


@given(byte_sets, byte_sets)
def test_intersection_is_set_intersection(a, b):
    assert set(cc_of(a) & cc_of(b)) == a & b


@given(byte_sets, byte_sets)
def test_difference_is_set_difference(a, b):
    assert set(cc_of(a) - cc_of(b)) == a - b


@given(byte_sets, byte_sets)
def test_symmetric_difference(a, b):
    assert set(cc_of(a) ^ cc_of(b)) == a ^ b


@given(byte_sets)
def test_double_negation_is_identity(a):
    assert ~~cc_of(a) == cc_of(a)


@given(byte_sets)
def test_de_morgan(a):
    cc = cc_of(a)
    assert ~(cc | CharClass.of("a")) == ~cc & ~CharClass.of("a")


@given(byte_sets)
def test_len_matches_cardinality(a):
    assert len(cc_of(a)) == len(a)


@given(byte_sets)
def test_iteration_sorted_unique(a):
    members = list(cc_of(a))
    assert members == sorted(set(members))
    assert set(members) == a


@given(byte_sets)
def test_ranges_cover_exactly(a):
    cc = cc_of(a)
    covered = set()
    for lo, hi in cc.ranges():
        assert lo <= hi
        covered.update(range(lo, hi + 1))
    assert covered == a


@given(byte_sets)
def test_hash_consistent_with_eq(a):
    assert hash(cc_of(a)) == hash(CharClass.from_iterable(sorted(a)))


class TestLabelTableInterning:
    """Identical label tables must be shared, not rebuilt per unit."""

    def _assignments(self, spec):
        return [(index, cc_of(values)) for index, values in spec]

    def test_identical_assignments_share_one_tuple(self):
        spec = [(0, {97}), (1, {98, 99}), (2, {97, 100})]
        first = charclass.interned_label_masks(self._assignments(spec))
        second = charclass.interned_label_masks(self._assignments(spec))
        assert first is second

    def test_differing_assignments_do_not_share(self):
        base = charclass.interned_label_masks(self._assignments([(0, {97})]))
        other = charclass.interned_label_masks(self._assignments([(0, {98})]))
        assert base is not other

    def test_size_participates_in_the_key(self):
        spec = self._assignments([(0, {3})])
        full = charclass.interned_label_masks(spec)
        small = charclass.interned_label_masks(spec, size=8)
        assert len(full) == ALPHABET_SIZE
        assert len(small) == 8
        assert full is not small

    @given(st.lists(st.tuples(st.integers(0, 30), byte_sets), max_size=6))
    def test_label_masks_unchanged_by_interning(self, spec):
        assignments = self._assignments(spec)
        expected = [0] * ALPHABET_SIZE
        for index, cc in assignments:
            for byte in cc:
                expected[byte] |= 1 << index
        assert charclass.label_masks(assignments) == expected
        assert charclass.interned_label_masks(assignments) == tuple(expected)

    def test_cache_is_bounded_lru(self, monkeypatch):
        monkeypatch.setattr(charclass, "_INTERN_CAP", 2)
        monkeypatch.setattr(
            charclass, "_interned_tables", type(charclass._interned_tables)()
        )
        a = self._assignments([(0, {97})])
        b = self._assignments([(0, {98})])
        c = self._assignments([(0, {99})])
        ta = charclass.interned_label_masks(a)
        charclass.interned_label_masks(b)
        assert charclass.interned_label_masks(a) is ta  # refresh a
        charclass.interned_label_masks(c)  # evicts b
        assert len(charclass._interned_tables) == 2
        assert charclass.interned_label_masks(a) is ta
        # b was evicted: a fresh (equal but distinct) tuple is built.
        tb = charclass.interned_label_masks(b)
        assert tb == charclass.interned_label_masks(b)
