"""Tests for structural regex analysis."""

import pytest

from repro.regex.analysis import (
    analyze,
    counting_compatible,
    describe,
    has_unbounded,
    max_finite_bound,
)
from repro.regex.ast import Repeat
from repro.regex.parser import parse


class TestHasUnbounded:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("abc", False),
            ("a*", True),
            ("a+", True),
            ("a{3,}", True),
            ("a{3,9}", False),
            ("(a*b){2}", True),
        ],
    )
    def test(self, pattern, expected):
        assert has_unbounded(parse(pattern)) is expected


class TestMaxFiniteBound:
    def test_no_bounds(self):
        assert max_finite_bound(parse("abc")) == 0

    def test_picks_largest(self):
        assert max_finite_bound(parse("a{3}b{100}c{7,12}")) == 100

    def test_ignores_open_bounds(self):
        assert max_finite_bound(parse("a{500,}b{3}")) == 3


class TestCountingCompatible:
    def get_repeat(self, pattern) -> Repeat:
        reps = [n for n in parse(pattern).walk() if isinstance(n, Repeat)]
        assert len(reps) == 1
        return reps[0]

    def test_charclass_body(self):
        assert counting_compatible(self.get_repeat("a{100}"))

    def test_sequence_body(self):
        assert counting_compatible(self.get_repeat("(abc){50}"))

    def test_alternation_body(self):
        assert counting_compatible(self.get_repeat("(ab|cd){50}"))

    def test_star_inside_body_ok(self):
        assert counting_compatible(self.get_repeat("(ab*c){50}"))

    def test_nullable_body_rejected(self):
        assert not counting_compatible(self.get_repeat("(a*){50}"))

    def test_nested_repeat_rejected(self):
        rep = [n for n in parse("(a{30}b){50}").walk() if isinstance(n, Repeat)][0]
        assert not counting_compatible(rep)


class TestAnalyze:
    def test_plain_regex_profile(self):
        profile = analyze(parse("ab[cd]"), unfold_threshold=4)
        assert profile.literal_count == 3
        assert profile.unfolded_size == 3
        assert not profile.nullable
        assert not profile.has_unbounded
        assert profile.bounded_reps == ()
        assert profile.is_linearizable

    def test_census_after_unfolding(self):
        profile = analyze(parse("a{3}b{100}"), unfold_threshold=4)
        assert len(profile.bounded_reps) == 1
        rep = profile.bounded_reps[0]
        assert (rep.lo, rep.hi) == (100, 100)
        assert rep.body_is_charclass
        assert rep.counting_compatible
        assert rep.bv_size == 100
        assert rep.unfolded_positions == 100

    def test_total_bv_bits_counts_only_compatible(self):
        profile = analyze(parse("a{100}(b{60}c){90}"), unfold_threshold=4)
        sizes = sorted(r.bv_size for r in profile.bounded_reps)
        assert sizes == [90, 100]
        compatible = [r for r in profile.bounded_reps if r.counting_compatible]
        assert len(compatible) == 1
        assert profile.total_bv_bits == 100

    def test_linearizable_within_blowup(self):
        profile = analyze(parse("a(b{1,2}|c)e"), unfold_threshold=8)
        assert profile.is_linearizable
        assert profile.linearization.total_states == 10

    def test_not_linearizable_beyond_blowup(self):
        # (a|bbbbbbbb){3}: linearization needs up to 24 states from 9 unfolded.
        profile = analyze(
            parse("(?:a|bbbbbbbb){3}"), unfold_threshold=8, lnfa_blowup=1.5
        )
        assert not profile.is_linearizable

    def test_unbounded_never_linearizable(self):
        profile = analyze(parse("ab*c"), unfold_threshold=4)
        assert not profile.is_linearizable
        assert profile.has_unbounded

    def test_nullable_flag(self):
        assert analyze(parse("a*"), unfold_threshold=4).nullable

    def test_unfolded_size_from_source_tree(self):
        profile = analyze(parse("a{1000}"), unfold_threshold=4)
        assert profile.unfolded_size == 1000
        assert profile.literal_count == 1


class TestDescribe:
    def test_describe_contains_key_facts(self):
        text = describe(parse("a{9}b*"))
        assert "max_bound=9" in text
        assert "unbounded=True" in text
