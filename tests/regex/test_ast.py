"""AST node and smart-constructor tests."""

import pytest

from repro.regex import ast
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Alt,
    Concat,
    Epsilon,
    Lit,
    Opt,
    Plus,
    Repeat,
    Star,
)
from repro.regex.charclass import CharClass


A = ast.lit(CharClass.of("a"))
B = ast.lit(CharClass.of("b"))
C = ast.lit(CharClass.of("c"))


class TestSmartConstructors:
    def test_lit_empty_class_is_empty_language(self):
        assert ast.lit(CharClass.empty()) is EMPTY

    def test_concat_flattens(self):
        node = ast.concat(ast.concat(A, B), C)
        assert node == Concat((A, B, C))

    def test_concat_drops_epsilon(self):
        assert ast.concat(A, EPSILON, B) == Concat((A, B))

    def test_concat_absorbs_empty(self):
        assert ast.concat(A, EMPTY, B) is EMPTY

    def test_concat_of_nothing_is_epsilon(self):
        assert ast.concat() is EPSILON

    def test_concat_singleton_unwrapped(self):
        assert ast.concat(A) is A

    def test_alt_flattens_and_dedupes(self):
        node = ast.alt(ast.alt(A, B), A, C)
        assert node == Alt((A, B, C))

    def test_alt_drops_empty(self):
        assert ast.alt(A, EMPTY) is A

    def test_alt_of_nothing_is_empty(self):
        assert ast.alt() is EMPTY

    def test_star_of_epsilon(self):
        assert ast.star(EPSILON) is EPSILON

    def test_star_of_star(self):
        assert ast.star(ast.star(A)) == Star(A)

    def test_star_of_plus(self):
        assert ast.star(ast.plus(A)) == Star(A)

    def test_star_of_opt(self):
        assert ast.star(ast.opt(A)) == Star(A)

    def test_plus_of_star_is_star(self):
        assert ast.plus(ast.star(A)) == Star(A)

    def test_opt_of_nullable_is_identity(self):
        assert ast.opt(ast.star(A)) == Star(A)

    def test_opt_of_empty_is_epsilon(self):
        assert ast.opt(EMPTY) is EPSILON

    def test_repeat_zero_is_epsilon(self):
        assert ast.repeat(A, 0, 0) is EPSILON

    def test_repeat_one_one_is_identity(self):
        assert ast.repeat(A, 1, 1) is A

    def test_repeat_zero_one_is_opt(self):
        assert ast.repeat(A, 0, 1) == Opt(A)

    def test_repeat_zero_unbounded_is_star(self):
        assert ast.repeat(A, 0, None) == Star(A)

    def test_repeat_one_unbounded_is_plus(self):
        assert ast.repeat(A, 1, None) == Plus(A)

    def test_repeat_validates_bounds(self):
        with pytest.raises(ValueError):
            Repeat(A, 3, 1)
        with pytest.raises(ValueError):
            Repeat(A, -1, 2)


class TestNullable:
    @pytest.mark.parametrize(
        "node,expected",
        [
            (EPSILON, True),
            (EMPTY, False),
            (A, False),
            (Star(A), True),
            (Plus(A), False),
            (Opt(A), True),
            (Concat((A, B)), False),
            (Concat((Star(A), Star(B))), True),
            (Alt((A, Star(B))), True),
            (Alt((A, B)), False),
            (Repeat(A, 0, 5), True),
            (Repeat(A, 2, 5), False),
        ],
    )
    def test_nullable(self, node, expected):
        assert node.nullable() is expected


class TestSizes:
    def test_literal_count_ignores_repetition(self):
        assert Repeat(Concat((A, B)), 3, 7).literal_count() == 2

    def test_unfolded_size_multiplies_by_upper_bound(self):
        assert Repeat(Concat((A, B)), 3, 7).unfolded_size() == 14

    def test_unfolded_size_open_bound_uses_lower(self):
        assert Repeat(A, 5, None).unfolded_size() == 5

    def test_nested_repeats_multiply(self):
        inner = Repeat(A, 2, 2)
        assert Repeat(inner, 3, 3).unfolded_size() == 6

    def test_star_counts_body_once(self):
        assert Star(Concat((A, B))).unfolded_size() == 2


class TestWalk:
    def test_walk_preorder(self):
        node = Concat((A, Star(B)))
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Concat", "Lit", "Star", "Lit"]


class TestRendering:
    def test_alt_inside_concat_grouped(self):
        node = ast.concat(A, ast.alt(B, C))
        assert node.to_pattern() == "a(?:b|c)"

    def test_repeat_rendering(self):
        assert Repeat(A, 3, 3).to_pattern() == "a{3}"
        assert Repeat(A, 2, 5).to_pattern() == "a{2,5}"
        assert Repeat(A, 2, None).to_pattern() == "a{2,}"

    def test_group_needed_for_concat_repetition(self):
        node = Repeat(Concat((A, B)), 2, 2)
        assert node.to_pattern() == "(?:ab){2}"

    def test_epsilon_renders_empty_group(self):
        assert Epsilon().to_pattern() == "(?:)"

    def test_repr_contains_pattern(self):
        assert "a{3}" in repr(Repeat(A, 3, 3))
