"""Parser robustness: arbitrary input never crashes unexpectedly.

The parser's contract is total: any string either parses to a valid AST
or raises :class:`RegexSyntaxError` — no other exception type, no hangs,
no invalid trees.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex.ast import Regex
from repro.regex.parser import RegexSyntaxError, parse, parse_anchored

# strings biased toward regex metacharacters to stress the grammar
_meta_text = st.text(
    alphabet=st.sampled_from(list("ab01(){}[]|*+?\\^$.,-x")), max_size=30
)


@settings(max_examples=400, deadline=None)
@given(_meta_text)
def test_parse_is_total(text):
    try:
        result = parse(text)
    except RegexSyntaxError:
        return
    assert isinstance(result, Regex)
    # a successful parse must render to something Python's re accepts
    re.compile(result.to_pattern())


@settings(max_examples=200, deadline=None)
@given(_meta_text)
def test_parse_anchored_is_total(text):
    try:
        parsed = parse_anchored(text)
    except RegexSyntaxError:
        return
    assert isinstance(parsed.regex, Regex)
    assert isinstance(parsed.anchored_start, bool)
    assert isinstance(parsed.anchored_end, bool)


@settings(max_examples=200, deadline=None)
@given(_meta_text)
def test_parse_reparse_fixpoint(text):
    """Rendering a parsed tree and parsing it again is a fixpoint."""
    try:
        first = parse(text)
    except RegexSyntaxError:
        return
    second = parse(first.to_pattern())
    assert second == first


@settings(max_examples=150, deadline=None)
@given(st.binary(max_size=20))
def test_parser_handles_weird_unicode_free_bytes(raw):
    """Latin-1-decoded binary garbage parses or fails cleanly."""
    text = raw.decode("latin-1")
    try:
        parse(text)
    except RegexSyntaxError:
        pass
    except ValueError as err:
        # symbols above \xff cannot occur from latin-1; any ValueError
        # must be the parser's own type
        raise AssertionError(f"wrong error type: {err!r}")
