"""Case-insensitive (?i) support tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.compiler import CompilerConfig, compile_ruleset
from repro.regex.charclass import CharClass, case_folded
from repro.regex.parser import parse_anchored
from repro.simulators import RAPSimulator


class TestCaseFolded:
    def test_lower_gains_upper(self):
        assert set(case_folded(CharClass.of("a"))) == {ord("a"), ord("A")}

    def test_upper_gains_lower(self):
        assert set(case_folded(CharClass.of("Z"))) == {ord("z"), ord("Z")}

    def test_non_letters_untouched(self):
        cc = CharClass.of("5", "-", 0x00)
        assert case_folded(cc) == cc

    def test_range_folds(self):
        folded = case_folded(CharClass.range("a", "c"))
        assert folded == CharClass.of("a", "b", "c", "A", "B", "C")

    def test_idempotent(self):
        cc = CharClass.range("a", "m") | CharClass.of("Q")
        assert case_folded(case_folded(cc)) == case_folded(cc)


class TestParseFlag:
    def test_flag_detected_and_stripped(self):
        parsed = parse_anchored("(?i)abc")
        assert parsed.case_insensitive
        assert parsed.regex.to_pattern() == "[Aa][Bb][Cc]"

    def test_flag_composes_with_anchors(self):
        parsed = parse_anchored("(?i)^abc$")
        assert parsed.case_insensitive
        assert parsed.anchored_start and parsed.anchored_end

    def test_no_flag(self):
        assert not parse_anchored("abc").case_insensitive

    def test_folding_reaches_nested_structure(self):
        parsed = parse_anchored("(?i)a(?:b|c{3})d*")
        rendered = parsed.regex.to_pattern()
        assert "[Aa]" in rendered and "[Dd]" in rendered

    def test_classes_fold(self):
        parsed = parse_anchored("(?i)[a-c]x")
        first = parsed.regex.parts[0].cc
        assert first.matches("B") and first.matches("b")


class TestEndToEnd:
    def test_nocase_rule_matches_both_cases(self):
        ruleset = compile_ruleset(["(?i)attack"], CompilerConfig())
        data = b"...ATTACK... attack ...AtTaCk..."
        result = RAPSimulator().run(ruleset, data)
        assert len(result.matches[0]) == 3

    def test_case_sensitive_rule_does_not(self):
        ruleset = compile_ruleset(["attack"], CompilerConfig())
        data = b"...ATTACK... attack ...AtTaCk..."
        result = RAPSimulator().run(ruleset, data)
        assert len(result.matches[0]) == 1

    def test_nocase_counted_pattern(self):
        ruleset = compile_ruleset(["(?i)x[a-f]{12}y"], CompilerConfig(bv_depth=4))
        data = b"zzX" + b"aBcDeFAbCdEf" + b"Y" + b"z" * 5
        result = RAPSimulator().run(ruleset, data)
        assert result.matches[0] == [15]


@given(st.sampled_from("azAZmM"), st.sampled_from("azAZmM"))
def test_fold_symmetry(a, b):
    """Folding makes letter membership case-blind."""
    folded = case_folded(CharClass.of(a))
    if a.lower() == b.lower():
        assert folded.matches(b)
