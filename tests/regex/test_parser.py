"""Parser unit tests: syntax coverage, error paths, and round-trips."""

import re

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.regex import ast
from repro.regex.ast import Alt, Concat, Lit, Opt, Plus, Repeat, Star
from repro.regex.charclass import CharClass
from repro.regex.parser import (
    AnchoredPattern,
    RegexSyntaxError,
    parse,
    parse_anchored,
)


def lit(ch: str) -> Lit:
    return Lit(CharClass.of(ch))


class TestBasicAtoms:
    def test_single_literal(self):
        assert parse("a") == lit("a")

    def test_concatenation(self):
        assert parse("abc") == Concat((lit("a"), lit("b"), lit("c")))

    def test_dot_is_any(self):
        node = parse(".")
        assert isinstance(node, Lit) and node.cc.is_any()

    def test_alternation(self):
        assert parse("a|b") == Alt((lit("a"), lit("b")))

    def test_alternation_three_way_flat(self):
        node = parse("a|b|c")
        assert isinstance(node, Alt) and len(node.parts) == 3

    def test_empty_pattern_is_epsilon(self):
        assert parse("") is ast.EPSILON

    def test_empty_alternation_branch(self):
        node = parse("a|")
        assert node.nullable()

    def test_group_is_transparent(self):
        assert parse("(ab)c") == parse("abc")

    def test_non_capturing_group(self):
        assert parse("(?:ab)c") == parse("abc")

    def test_nested_groups(self):
        assert parse("((a))") == lit("a")


class TestQuantifiers:
    def test_star(self):
        assert parse("a*") == Star(lit("a"))

    def test_plus(self):
        assert parse("a+") == Plus(lit("a"))

    def test_opt(self):
        assert parse("a?") == Opt(lit("a"))

    def test_exact_bound(self):
        assert parse("a{3}") == Repeat(lit("a"), 3, 3)

    def test_range_bound(self):
        assert parse("a{2,5}") == Repeat(lit("a"), 2, 5)

    def test_open_bound(self):
        assert parse("a{2,}") == Repeat(lit("a"), 2, None)

    def test_bound_on_group(self):
        assert parse("(ab){2,3}") == Repeat(parse("ab"), 2, 3)

    def test_quantifier_binds_to_last_atom(self):
        assert parse("ab*") == Concat((lit("a"), Star(lit("b"))))

    def test_lazy_modifier_ignored(self):
        assert parse("a*?") == parse("a*")
        assert parse("a+?") == parse("a+")
        assert parse("a{2,5}?") == parse("a{2,5}")

    def test_possessive_modifier_ignored(self):
        assert parse("a*+") == parse("a*")

    def test_one_one_bound_collapses(self):
        assert parse("a{1}") == lit("a")

    def test_zero_one_bound_is_opt(self):
        assert parse("a{0,1}") == Opt(lit("a"))

    def test_literal_brace_not_a_bound(self):
        node = parse("a{x}")
        assert node == parse("a\\{x\\}")

    def test_stacked_quantifiers(self):
        # (a+)* collapses to a* under the smart constructors.
        assert parse("(a+)*") == Star(lit("a"))


class TestCharacterClasses:
    def test_simple_class(self):
        node = parse("[abc]")
        assert isinstance(node, Lit)
        assert sorted(node.cc) == [ord(c) for c in "abc"]

    def test_range_class(self):
        node = parse("[a-f]")
        assert node == Lit(CharClass.range("a", "f"))

    def test_negated_class(self):
        node = parse("[^a]")
        assert isinstance(node, Lit)
        assert not node.cc.matches("a")
        assert node.cc.matches("b")
        assert len(node.cc) == 255

    def test_mixed_class(self):
        node = parse("[a-cx]")
        assert sorted(node.cc) == [ord(c) for c in "abcx"]

    def test_leading_close_bracket_is_literal(self):
        node = parse("[]a]")
        assert sorted(node.cc) == sorted([ord("]"), ord("a")])

    def test_trailing_dash_is_literal(self):
        node = parse("[a-]")
        assert sorted(node.cc) == sorted([ord("a"), ord("-")])

    def test_leading_dash_is_literal(self):
        node = parse("[-a]")
        assert sorted(node.cc) == sorted([ord("a"), ord("-")])

    def test_class_escape_inside_class(self):
        node = parse("[\\d_]")
        assert node.cc.matches("5") and node.cc.matches("_")
        assert not node.cc.matches("a")

    def test_escaped_bracket_inside_class(self):
        node = parse("[\\]]")
        assert node == lit("]")

    def test_hex_escape_inside_class(self):
        node = parse("[\\x41-\\x43]")
        assert sorted(node.cc) == [0x41, 0x42, 0x43]

    def test_dot_inside_class_is_literal(self):
        node = parse("[.]")
        assert node == lit(".")


class TestEscapes:
    @pytest.mark.parametrize(
        "pattern,byte",
        [("\\n", 10), ("\\t", 9), ("\\r", 13), ("\\0", 0), ("\\x7f", 0x7F)],
    )
    def test_char_escapes(self, pattern, byte):
        assert parse(pattern) == Lit(CharClass.of(byte))

    @pytest.mark.parametrize("meta", list(".^$*+?()[]{}|\\"))
    def test_escaped_metachars(self, meta):
        assert parse("\\" + meta) == Lit(CharClass.of(meta))

    def test_digit_class_escape(self):
        node = parse("\\d")
        assert isinstance(node, Lit) and len(node.cc) == 10

    def test_negated_word_escape(self):
        node = parse("\\W")
        assert not node.cc.matches("a")
        assert node.cc.matches("-")


class TestErrors:
    @pytest.mark.parametrize(
        "pattern",
        [
            "(",
            ")",
            "(a",
            "a)",
            "[",
            "[a",
            "*",
            "+a*",
            "a{3,1}",
            "a{99999999}",
            "\\",
            "[\\",
            "\\xZZ",
            "\\x1",
            "(?P<x>a)",
            "(?=a)",
            "[z-a]",
            "a^b",
            "a$b",
        ],
    )
    def test_rejected(self, pattern):
        with pytest.raises(RegexSyntaxError):
            parse(pattern)

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as err:
            parse("ab[")
        assert err.value.pos >= 2
        assert err.value.pattern == "ab["

    def test_anchors_rejected_by_plain_parse(self):
        with pytest.raises(RegexSyntaxError):
            parse("^a")
        with pytest.raises(RegexSyntaxError):
            parse("a$")


class TestAnchoredParse:
    def test_both_anchors(self):
        parsed = parse_anchored("^abc$")
        assert parsed == AnchoredPattern(parse("abc"), True, True)

    def test_no_anchors(self):
        parsed = parse_anchored("abc")
        assert not parsed.anchored_start and not parsed.anchored_end

    def test_escaped_dollar_is_literal(self):
        parsed = parse_anchored("ab\\$")
        assert not parsed.anchored_end
        assert parsed.regex == parse("ab\\$")


# -- round-trip property ------------------------------------------------------

_safe_chars = st.sampled_from("abcdefgh01_ ")


def _regex_trees(depth: int = 3):
    leaf = _safe_chars.map(lambda c: ast.lit(CharClass.of(c)))
    return st.recursive(
        leaf,
        lambda sub: st.one_of(
            st.tuples(sub, sub).map(lambda t: ast.concat(*t)),
            st.tuples(sub, sub).map(lambda t: ast.alt(*t)),
            sub.map(ast.star),
            sub.map(ast.plus),
            sub.map(ast.opt),
            st.tuples(sub, st.integers(0, 4), st.integers(0, 3)).map(
                lambda t: ast.repeat(t[0], t[1], t[1] + t[2])
            ),
        ),
        max_leaves=8,
    )


@given(_regex_trees())
def test_to_pattern_round_trips(tree):
    """Rendering and re-parsing yields a structurally equal tree."""
    assert parse(tree.to_pattern()) == tree


@given(_regex_trees())
def test_rendered_pattern_is_valid_python_re(tree):
    """Our concrete syntax stays inside Python's re dialect."""
    re.compile(tree.to_pattern())
