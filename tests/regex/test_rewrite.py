"""Tests for the rewriting passes of Section 4."""

import re

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.regex.ast import Repeat
from repro.regex.charclass import CharClass
from repro.regex.parser import parse
from repro.regex.rewrite import (
    RewriteError,
    linearize,
    make_countable,
    rewrite_bounds_for_bv,
    unfold,
    unfold_all,
    unfold_repeat,
)


def surviving_repeats(regex):
    return [n for n in regex.walk() if isinstance(n, Repeat)]


class TestUnfolding:
    def test_paper_example_4_1(self):
        """ab(cd){2}e{1,3}f{2,}g{5} with threshold 4 unfolds everything but
        g{5}.  The paper prints the flat form abcdcdee?e?fff*g{5}; we emit
        the language-equivalent nested form (linear Glushkov structure)."""
        regex = parse("ab(cd){2}e{1,3}f{2,}g{5}")
        unfolded = unfold(regex, threshold=4)
        assert unfolded == parse("abcdcde(?:ee?)?fff*g{5}")
        # language equivalence with the paper's flat rendering
        flat = re.compile(parse("abcdcdee?e?fff*g{5}").to_pattern())
        nested = re.compile(unfolded.to_pattern())
        for text in ["abcdcdefffggggg", "abcdcdeeefffffggggg", "abcdcdeggggg"]:
            assert bool(flat.fullmatch(text)) == bool(nested.fullmatch(text))

    def test_threshold_boundary_inclusive(self):
        regex = parse("a{4}")
        assert unfold(regex, threshold=4) == parse("aaaa")
        assert unfold(regex, threshold=3) == parse("a{4}")

    def test_open_bound_always_unfolded(self):
        assert unfold(parse("a{3,}"), threshold=0) == parse("aaaa*")

    def test_zero_lower_bound(self):
        assert unfold(parse("a{0,2}"), threshold=4) == parse("(?:a(?:a)?)?")

    def test_unfold_all_removes_every_repeat(self):
        regex = parse("a{10}(bc){3,7}d{2,}")
        assert surviving_repeats(unfold_all(regex)) == []

    def test_unfold_preserves_size_accounting(self):
        regex = parse("a{10}")
        assert unfold_all(regex).literal_count() == regex.unfolded_size()

    def test_nested_repeats_unfold_inside_out(self):
        regex = parse("(a{2}){3}")
        assert unfold_all(regex) == parse("aaaaaa")

    def test_kept_repeat_body_still_rewritten(self):
        regex = parse("(a{2}b){100}")
        out = unfold(regex, threshold=4)
        reps = surviving_repeats(out)
        assert len(reps) == 1
        assert reps[0].inner == parse("aab")

    def test_max_size_guard(self):
        with pytest.raises(RewriteError):
            unfold(parse("a{60000}b{60000}"), threshold=1 << 61, max_size=100_000)

    def test_unfold_repeat_shape(self):
        a = parse("a")
        assert unfold_repeat(a, 1, 3) == parse("a(?:a(?:a)?)?")

    def test_nested_unfolding_has_linear_follow_structure(self):
        """The point of nesting: edge count grows linearly, not
        quadratically, in the optional-chain length."""
        from repro.automata.glushkov import build_automaton

        auto = build_automaton(unfold_all(parse("a{0,40}b")))
        # flat unfolding would give ~40*40/2 edges; nested gives ~2 per state
        assert len(auto.edges) <= 3 * auto.state_count


class TestBoundedRepetitionRewriting:
    def test_paper_example_4_2(self):
        """ab{10,48}cd{34}ef{128} at depth 16: b{10}b{0,38}, d{32}dd, f{128}."""
        regex = unfold(parse("ab{10,48}cd{34}ef{128}"), threshold=4)
        out = rewrite_bounds_for_bv(regex, depth=16)
        assert out == parse("ab{10}b{0,38}cd{32}ddef{128}")

    def test_exact_multiple_of_depth_untouched(self):
        out = rewrite_bounds_for_bv(parse("f{128}"), depth=16)
        assert out == parse("f{128}")

    def test_exact_below_depth_untouched(self):
        out = rewrite_bounds_for_bv(parse("a{9}"), depth=16)
        assert out == parse("a{9}")

    def test_word_alignment_can_be_disabled(self):
        out = rewrite_bounds_for_bv(parse("d{34}"), depth=16, word_align_exact=False)
        assert out == parse("d{34}")

    def test_range_splits_into_exact_and_upto(self):
        out = rewrite_bounds_for_bv(parse("b{10,48}"), depth=16)
        reps = surviving_repeats(out)
        assert [(r.lo, r.hi) for r in reps] == [(10, 10), (0, 38)]

    def test_zero_lower_bound_is_pure_rall(self):
        out = rewrite_bounds_for_bv(parse("b{0,38}"), depth=16)
        assert out == parse("b{0,38}")

    def test_unbounded_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_bounds_for_bv(parse("a{2,}"), depth=16)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            rewrite_bounds_for_bv(parse("a{8}"), depth=0)

    def test_group_body_repetition(self):
        out = rewrite_bounds_for_bv(parse("(ab){6,9}"), depth=4)
        reps = surviving_repeats(out)
        assert [(r.lo, r.hi) for r in reps] == [(4, 4), (0, 3)]
        # remainder of the 6 mandatory copies is unfolded: (ab){4}abab(ab){0,3}
        assert out == parse("(?:ab){4}abab(?:ab){0,3}")


class TestMakeCountable:
    def compatible(self, regex):
        from repro.regex.analysis import counting_compatible

        return all(
            counting_compatible(n)
            for n in regex.walk()
            if isinstance(n, Repeat)
        )

    def test_compatible_repeat_untouched(self):
        regex = parse("a{100}")
        assert make_countable(regex) == regex

    def test_nullable_body_unfolded(self):
        out = make_countable(parse("(?:a?){0,3}"))
        assert surviving_repeats(out) == []

    def test_nested_keeps_larger_outer(self):
        out = make_countable(parse("(?:a{5}b){50}"))
        reps = surviving_repeats(out)
        assert [(r.lo, r.hi) for r in reps] == [(50, 50)]
        assert reps[0].inner == parse("aaaaab")

    def test_nested_keeps_larger_inner(self):
        out = make_countable(parse("(?:a{50}b){5}"))
        reps = surviving_repeats(out)
        assert all((r.lo, r.hi) == (50, 50) for r in reps)
        assert len(reps) == 5

    def test_result_is_always_compatible(self):
        for pattern in [
            "(?:a?){0,3}",
            "(?:a{5}b){50}",
            "(?:a{50}b){5}",
            "(?:(?:a{3}){4}){5}",
            "(?:a*b){9}",
        ]:
            out = make_countable(parse(pattern))
            assert self.compatible(out), pattern

    def test_language_preserved(self):
        for pattern, text in [
            ("(?:a{2}b){3}", "aabaabaab"),
            ("(?:a?){0,3}", "aaa"),
        ]:
            original = re.compile(parse(pattern).to_pattern())
            rewritten = re.compile(make_countable(parse(pattern)).to_pattern())
            assert bool(original.fullmatch(text)) == bool(
                rewritten.fullmatch(text)
            )


class TestLinearization:
    def seqs(self, pattern, max_states=64):
        lin = linearize(parse(pattern), max_states=max_states)
        if lin is None:
            return None
        return {
            "".join(cc.to_pattern() for cc in seq) for seq in lin.sequences
        }

    def test_paper_example_4_4(self):
        """a(b{1,2}|c)e -> abe | abbe | ace."""
        assert self.seqs("a(b{1,2}|c)e") == {"abe", "abbe", "ace"}

    def test_plain_sequence(self):
        assert self.seqs("a[bc].d") == {"a[bc].d"}

    def test_optional_tail(self):
        assert self.seqs("ab?") == {"a", "ab"}

    def test_star_not_linearizable(self):
        assert self.seqs("ab*c") is None

    def test_plus_not_linearizable(self):
        assert self.seqs("a+") is None

    def test_open_repeat_not_linearizable(self):
        assert self.seqs("a{2,}") is None

    def test_budget_rejects_blowup(self):
        # (a|b){8} has 256 sequences of length 8 = 2048 states.
        assert self.seqs("(?:a|b){8}", max_states=100) is None

    def test_budget_allows_within_limit(self):
        assert self.seqs("(?:a|b){2}", max_states=100) == {"aa", "ab", "ba", "bb"}

    def test_nullable_regex_rejected(self):
        # An empty sequence cannot be an LNFA.
        assert self.seqs("a?") is None

    def test_total_states_accounting(self):
        lin = linearize(parse("a(b{1,2}|c)e"), max_states=64)
        assert lin.total_states == len("abe") + len("abbe") + len("ace")

    def test_sequences_deduplicated(self):
        lin = linearize(parse("(?:a|a)b"), max_states=64)
        assert lin.sequences == ((CharClass.of("a"), CharClass.of("b")),)

    def test_repeat_of_alternation(self):
        assert self.seqs("(?:ab|c){2}") == {"abab", "abc", "cab", "cc"}


# -- language preservation properties ----------------------------------------

_patterns = st.sampled_from(
    [
        "ab{2,4}c",
        "(ab){1,3}",
        "a{3}|b{2}",
        "x(y|z){2,3}",
        "[ab]{2,5}",
        "a{2,}b",
        "(a|bb){1,2}c",
        "a?b{3}",
    ]
)
_inputs = st.text(alphabet="abcxyz", max_size=12)


@given(_patterns, _inputs)
def test_unfolding_preserves_language(pattern, text):
    original = re.compile(parse(pattern).to_pattern())
    unfolded = re.compile(unfold_all(parse(pattern)).to_pattern())
    assert bool(original.fullmatch(text)) == bool(unfolded.fullmatch(text))


@given(_patterns, st.integers(0, 6), _inputs)
def test_threshold_unfolding_preserves_language(pattern, threshold, text):
    original = re.compile(parse(pattern).to_pattern())
    rewritten = re.compile(unfold(parse(pattern), threshold).to_pattern())
    assert bool(original.fullmatch(text)) == bool(rewritten.fullmatch(text))


@given(_patterns, st.sampled_from([2, 4, 16]), _inputs)
def test_bv_rewriting_preserves_language(pattern, depth, text):
    source = unfold(parse(pattern), threshold=1)
    original = re.compile(source.to_pattern())
    rewritten = re.compile(rewrite_bounds_for_bv(source, depth=depth).to_pattern())
    assert bool(original.fullmatch(text)) == bool(rewritten.fullmatch(text))


@given(
    st.sampled_from(["a(b{1,2}|c)e", "ab?c?", "(?:a|b){2}x", "[xy]{1,3}"]),
    st.text(alphabet="abcex y", max_size=8),
)
def test_linearization_preserves_language(pattern, text):
    regex = parse(pattern)
    lin = linearize(regex, max_states=256)
    assert lin is not None
    original = re.compile(regex.to_pattern())
    matched_by_union = any(
        len(text) == len(seq)
        and all(cc.matches(ch) for cc, ch in zip(seq, text))
        for seq in lin.sequences
    )
    assert bool(original.fullmatch(text)) == matched_by_union
