"""The shipped sample rule files must compile and scan end to end."""

from pathlib import Path

import pytest

from repro.cli import main

RULES_DIR = Path(__file__).resolve().parent.parent / "data" / "sample_rules"
RULE_FILES = sorted(RULES_DIR.iterdir())


def test_sample_rules_shipped():
    assert {p.name for p in RULE_FILES} == {
        "network.rules",
        "malware.sig",
        "motifs.prosite",
    }


@pytest.mark.parametrize("rules", RULE_FILES, ids=lambda p: p.name)
def test_sample_rules_compile(rules, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    code = main(["compile", str(rules), "-o", str(out)])
    assert code == 0
    stderr = capsys.readouterr().err
    assert "rejected" not in stderr


def test_network_rules_scan_synthetic_traffic(tmp_path, capsys):
    traffic = tmp_path / "traffic.bin"
    traffic.write_bytes(
        b"GET /index HTTP/1.1\r\n"
        b"user-agent: scanbot4242\r\n"
        b"GET /ADMIN backdoor passwd\r\n"
        b"cmd.exe /c whoami\r\n"
    )
    code = main(
        ["scan", "--patterns", str(RULES_DIR / "network.rules"), str(traffic)]
    )
    assert code == 0
    captured = capsys.readouterr()
    hits = [line for line in captured.out.splitlines() if line]
    matched_patterns = {line.split("\t")[2] for line in hits}
    assert "user-agent: scanbot[0-9]{2,8}" in matched_patterns
    assert "cmd\\.exe.*whoami" in matched_patterns
    assert "(?i)get /admin[^\\n]{0,64}passwd" in matched_patterns


def test_malware_signatures_scan_binary(tmp_path, capsys):
    image = tmp_path / "image.bin"
    image.write_bytes(
        b"\x4d\x5a" + bytes(range(1, 101)) + b"\x50\x45\x00\x00"
        + b"\x7fELF\x02\x01\x01" + b"\x00" * 20
    )
    code = main(
        ["scan", "--patterns", str(RULES_DIR / "malware.sig"), str(image)]
    )
    assert code == 0
    hits = [line for line in capsys.readouterr().out.splitlines() if line]
    assert len(hits) >= 2  # the MZ..PE and ELF signatures fire
