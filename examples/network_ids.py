"""Network intrusion detection: a Snort-style workload end to end.

Run with::

    python examples/network_ids.py

Builds a synthetic Snort-like rule set (the mixed NFA/NBVA/LNFA blend of
Fig. 1), streams synthetic network traffic with planted attack payloads
through RAP and through the CAMA baseline, cross-checks that both report
identical alerts, and compares the designs on the paper's system metrics.
"""

from repro import (
    CAMASimulator,
    CompiledMode,
    CompilerConfig,
    RAPSimulator,
    compile_ruleset,
)
from repro.workloads.datasets import generate_benchmark
from repro.workloads.inputs import generate_input


def main() -> None:
    benchmark = generate_benchmark("Snort", size=30, seed=7)
    traffic = generate_input(
        "network",
        length=20_000,
        seed=7,
        patterns=benchmark.patterns,
        plant_every=1500,
    )
    print(
        f"Workload: {len(benchmark)} Snort-style rules over "
        f"{len(traffic)} bytes of traffic"
    )

    # RAP: each rule in its best mode, at the benchmark's DSE parameters.
    rap_rules = compile_ruleset(
        benchmark.patterns,
        CompilerConfig(bv_depth=benchmark.profile.chosen_bv_depth),
    )
    rap = RAPSimulator().run(
        rap_rules, traffic, bin_size=benchmark.profile.chosen_bin_size
    )

    # CAMA: every rule as a fully unfolded NFA.
    cama_rules = compile_ruleset(
        benchmark.patterns, CompilerConfig(forced_mode=CompiledMode.NFA)
    )
    cama = CAMASimulator().run(cama_rules, traffic)

    if rap.matches != cama.matches:
        raise SystemExit("alert mismatch between RAP and CAMA!")
    alerts = sum(len(v) for v in rap.matches.values())
    firing = [rid for rid, ends in rap.matches.items() if ends]
    print(f"Alerts: {alerts} (from {len(firing)} rules), identical on both designs")

    mix = rap_rules.mode_counts()
    print(
        f"RAP mode mix: {mix[CompiledMode.NFA]} NFA / "
        f"{mix[CompiledMode.NBVA]} NBVA / {mix[CompiledMode.LNFA]} LNFA"
    )

    print(f"\n{'metric':<22}{'RAP':>12}{'CAMA':>12}{'RAP/CAMA':>10}")
    for label, a, b in [
        ("energy (uJ)", rap.energy_uj, cama.energy_uj),
        ("area (mm^2)", rap.area_mm2, cama.area_mm2),
        ("throughput (Gch/s)", rap.throughput_gchps, cama.throughput_gchps),
        ("power (mW)", rap.power_w * 1e3, cama.power_w * 1e3),
        (
            "energy eff (Gch/J)",
            rap.energy_efficiency,
            cama.energy_efficiency,
        ),
        (
            "density (Gch/s/mm^2)",
            rap.compute_density,
            cama.compute_density,
        ),
    ]:
        ratio = a / b if b else float("inf")
        print(f"{label:<22}{a:>12.3f}{b:>12.3f}{ratio:>10.2f}")

    print(
        "\nThe NBVA rules dominate the gap: CAMA spends "
        f"{cama.energy_uj / rap.energy_uj:.1f}x RAP's energy unfolding "
        "their bounded repetitions into STE chains."
    )


if __name__ == "__main__":
    main()
