"""Exploring alternative RAP design points (beyond the paper's Fig. 10).

Run with::

    python examples/design_space.py

The paper fixes the tile geometry at a 32x128 CAM with 16 tiles per
array and explores only the BV depth and bin size.  Because every layer
of this library is parameterized by :class:`~repro.HardwareConfig`, the
same compiler/mapper/simulator stack can evaluate *structural*
alternatives too.  This example sweeps the tile width (CAM columns =
local switch dimension) on a mixed Snort-style workload and reports how
the area/energy balance moves — the local-switch area grows
quadratically with tile width while controller overhead amortizes, the
trade Section 3.3 describes when sizing the tile.
"""

import dataclasses

from repro import CompilerConfig, HardwareConfig, RAPSimulator, compile_ruleset
from repro.hardware.circuits import TABLE1
from repro.simulators.asic_base import rap_nfa_params
from repro.workloads.datasets import generate_benchmark
from repro.workloads.inputs import generate_input


def tile_geometry(cam_cols: int) -> HardwareConfig:
    """A RAP variant with ``cam_cols``-wide tiles (same total STE budget)."""
    tiles = 2048 // cam_cols  # keep one array at 2048 STEs
    return HardwareConfig(
        cam_cols=cam_cols,
        local_switch_dim=cam_cols,
        tiles_per_array=tiles,
        global_switch_dim=256,
    )


def simulator_for(hw: HardwareConfig) -> RAPSimulator:
    """Scale the switch-dependent circuit costs with the tile width.

    FCB energy and area grow ~quadratically in the crossbar dimension;
    Table 1 gives the 128x128 and 256x256 points and we interpolate the
    64x64 one the same way.
    """
    sim = RAPSimulator(hw)
    scale = (hw.local_switch_dim / 128) ** 2
    base = rap_nfa_params(TABLE1)
    sim.params = dataclasses.replace(
        base,
        name=f"RAP-{hw.local_switch_dim}",
        switch_min_pj=base.switch_min_pj * scale,
        switch_max_pj=base.switch_max_pj * scale,
        tile_area_um2=(
            TABLE1.cam.area_um2 * (hw.cam_cols / 128)
            + TABLE1.sram_128.area_um2 * scale
            + TABLE1.local_controller.area_um2
        ),
        tile_leak_uw=(
            TABLE1.cam.leakage_ua * (hw.cam_cols / 128)
            + TABLE1.sram_128.leakage_ua * scale
            + TABLE1.local_controller.leakage_ua
        )
        * 0.9,
    )
    return sim


def main() -> None:
    benchmark = generate_benchmark("Snort", size=24, seed=13)
    data = generate_input(
        "network",
        8000,
        seed=13,
        patterns=benchmark.patterns,
        plant_every=900,
    )
    print(
        f"Workload: {len(benchmark)} Snort-style rules, {len(data)} bytes\n"
    )
    print(
        f"{'tile width':>10}  {'tiles/arr':>9}  {'energy uJ':>10}  "
        f"{'area mm^2':>10}  {'Gch/s':>6}  {'tiles':>6}"
    )
    results = {}
    for cam_cols in (64, 128, 256):
        hw = tile_geometry(cam_cols)
        ruleset = compile_ruleset(
            benchmark.patterns,
            CompilerConfig(bv_depth=8, hw=hw),
        )
        if ruleset.rejected:
            raise SystemExit(f"rejections at width {cam_cols}")
        result = simulator_for(hw).run(ruleset, data)
        results[cam_cols] = result
        print(
            f"{cam_cols:>10}  {hw.tiles_per_array:>9}  "
            f"{result.energy_uj:>10.4f}  {result.area_mm2:>10.4f}  "
            f"{result.throughput_gchps:>6.2f}  {result.tiles:>6}"
        )

    print(
        "\nNarrow tiles need more of them (controller overhead per tile) "
        "but their switches are small; wide tiles amortize control yet "
        "pay the quadratic crossbar. The paper's 128-column tile sits at "
        "the knee — the same conclusion its Section 3.3 sizing argument "
        "reaches analytically."
    )
    for cam_cols, result in results.items():
        sample = next(iter(result.matches.values()))
        assert results[128].matches == result.matches, (
            "geometry must never change matching semantics"
        )
        del sample
    print("(All three design points reported identical matches.)")


if __name__ == "__main__":
    main()
