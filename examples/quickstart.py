"""Quickstart: compile a few regexes, run them on RAP, read the results.

Run with::

    python examples/quickstart.py

Walks the full pipeline: parse/compile (the Fig. 9 decision graph picks a
mode per regex), map onto tiles/arrays, simulate over an input stream,
and report matches plus the hardware metrics of Section 5.2.
"""

from repro import CompiledMode, CompilerConfig, RAPSimulator, compile_ruleset

PATTERNS = [
    # a virus-signature-style pattern: bounded gap -> NBVA mode
    r"malw[0-9a-f]{20,60}sig",
    # a fixed protein-motif-style pattern -> LNFA mode
    r"GA[TU]TACA",
    # an unbounded scan pattern -> NFA mode
    r"user=.*admin",
]

INPUT = (
    b"hello user=root then user=admin logs in; "
    b"GATTACA and GAUTACA both match; "
    b"malw" + b"3f" * 15 + b"sig ends the stream"
)


def main() -> None:
    config = CompilerConfig(unfold_threshold=8, bv_depth=8)
    ruleset = compile_ruleset(PATTERNS, config)
    if ruleset.rejected:
        raise SystemExit(f"rejected patterns: {ruleset.rejected}")

    print("Compilation (Fig. 9 decision graph):")
    for regex in ruleset:
        print(
            f"  [{regex.regex_id}] {regex.pattern!r:42} -> {regex.mode.value:4} "
            f"({regex.states} states on hardware, "
            f"{regex.unfolded_states} if fully unfolded)"
        )

    result = RAPSimulator().run(ruleset, INPUT)

    print("\nMatches (regex id -> end positions):")
    for regex in ruleset:
        ends = result.matches[regex.regex_id]
        print(f"  [{regex.regex_id}] {ends}")
        for end in ends:
            start = max(0, end - 20)
            print(f"        ...{INPUT[start : end + 1].decode()!r}")

    print("\nHardware metrics:")
    print(f"  energy       {result.energy_uj * 1e6:10.1f} pJ")
    print(f"  area         {result.area_mm2:10.4f} mm^2")
    print(f"  throughput   {result.throughput_gchps:10.2f} Gch/s")
    print(f"  power        {result.power_w * 1e3:10.3f} mW")
    print(f"  arrays/tiles {result.arrays:3d} arrays, {result.tiles} tiles")
    print(f"  stall cycles {result.stall_cycles:6d} (bit-vector phases)")

    mix = ruleset.mode_counts()
    print(
        f"\nMode mix: {mix[CompiledMode.NFA]} NFA, "
        f"{mix[CompiledMode.NBVA]} NBVA, {mix[CompiledMode.LNFA]} LNFA"
    )


if __name__ == "__main__":
    main()
