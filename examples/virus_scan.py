"""Virus scanning: NBVA counting, BV depth, and the BVAP comparison.

Run with::

    python examples/virus_scan.py

ClamAV-style signatures are literal fragments separated by bounded gaps
(``prefix .{m,n} suffix``).  Unfolded into an NFA, each gap costs one STE
per position; RAP's NBVA mode tracks the whole gap in a bit vector
stored in spare CAM columns.  The example scans a binary image, sweeps
the BV depth (the Fig. 10a tradeoff), and compares against BVAP's fixed
bit-vector modules.
"""

from repro import (
    BVAPSimulator,
    CompiledMode,
    CompilerConfig,
    RAPSimulator,
    compile_ruleset,
)
from repro.workloads.datasets import generate_benchmark
from repro.workloads.inputs import generate_input


def main() -> None:
    benchmark = generate_benchmark("ClamAV", size=24, seed=11)
    signatures = [
        p
        for p, mode in zip(benchmark.patterns, benchmark.intended_modes)
        if mode == "NBVA"
    ]
    image = generate_input(
        "binary", 12_000, seed=11, patterns=signatures, plant_every=4000
    )
    print(
        f"Scanning a {len(image)}-byte binary image against "
        f"{len(signatures)} gap signatures"
    )

    total_unfolded = sum(
        r.unfolded_states
        for r in compile_ruleset(
            signatures, CompilerConfig(forced_mode=CompiledMode.NFA)
        )
    )

    print(
        f"\n{'depth':>6}  {'STEs':>6}  {'CAM cols':>9}  {'energy uJ':>10}  "
        f"{'area mm^2':>10}  {'Gch/s':>6}"
    )
    chosen = {}
    for depth in (4, 8, 16, 32):
        ruleset = compile_ruleset(signatures, CompilerConfig(bv_depth=depth))
        result = RAPSimulator().run(ruleset, image)
        chosen[depth] = (ruleset, result)
        print(
            f"{depth:>6}  {ruleset.total_states:>6}  "
            f"{sum(r.total_columns for r in ruleset):>9}  "
            f"{result.energy_uj:>10.4f}  {result.area_mm2:>10.4f}  "
            f"{result.throughput_gchps:>6.2f}"
        )
    print(
        f"\n(The same signatures fully unfolded need {total_unfolded} STEs; "
        f"counting stores them in "
        f"{sum(r.total_columns for r in chosen[32][0])} CAM columns at "
        "depth 32.)"
    )

    ruleset, rap = chosen[32]
    bvap = BVAPSimulator().run(ruleset, image)
    assert bvap.matches == rap.matches
    infections = sum(len(v) for v in rap.matches.values())
    print(f"\nInfections found: {infections} (identical on RAP and BVAP)")
    print(
        f"BVAP: {bvap.energy_uj:.4f} uJ, {bvap.area_mm2:.4f} mm^2, "
        f"{bvap.throughput_gchps:.2f} Gch/s"
    )
    print(
        f"RAP : {rap.energy_uj:.4f} uJ, {rap.area_mm2:.4f} mm^2, "
        f"{rap.throughput_gchps:.2f} Gch/s"
    )
    print(
        "\nBVAP's dedicated bit-vector modules are cheaper per update, "
        "but their fixed 256-bit slots waste capacity that RAP's "
        f"dynamically allocated CAM columns do not: area ratio "
        f"{bvap.area_mm2 / rap.area_mm2:.2f}x."
    )


if __name__ == "__main__":
    main()
