"""Protein motif scanning: LNFA mode and multi-LNFA binning (Prosite).

Run with::

    python examples/protein_motifs.py

Prosite-style motifs are fixed-length character-class sequences — exactly
the Linear NFA shape RAP executes with the Shift-And active-vector path.
This example scans a synthetic protein database with a motif set, then
sweeps the bin size to show the Fig. 10b effect: bigger bins concentrate
initial states into fewer always-on tiles and cut energy, at the cost of
padding redundancy.
"""

from repro import CompiledMode, CompilerConfig, RAPSimulator, compile_ruleset
from repro.workloads.datasets import generate_benchmark
from repro.workloads.inputs import generate_input

MOTIFS = [
    # hand-written Prosite-flavoured motifs (PA-line style, translated)
    "C[ST]HC",  # zinc-finger-ish
    "N[ACDEFGHIKLMNPQRSTVWY][ST]",  # N-glycosylation site N-x-S/T
    "RGD",  # cell attachment tripeptide
    "G[KR][KR]GG",
    "W[FYW]PD",
]


def main() -> None:
    benchmark = generate_benchmark("Prosite", size=24, seed=3)
    motifs = MOTIFS + list(benchmark.patterns)
    database = generate_input(
        "protein", 15_000, seed=3, patterns=motifs, plant_every=800
    )
    print(f"Scanning {len(database)} residues for {len(motifs)} motifs")

    ruleset = compile_ruleset(motifs, CompilerConfig())
    lnfa = ruleset.by_mode(CompiledMode.LNFA)
    print(
        f"{len(lnfa)}/{len(ruleset)} motifs compile to LNFA mode "
        f"({sum(len(r.lnfas) for r in lnfa)} hardware LNFAs after "
        "linearization)"
    )

    sim = RAPSimulator()
    print(f"\n{'bin size':>8}  {'energy (uJ)':>12}  {'area (mm^2)':>12}  {'hits':>6}")
    results = {}
    for bin_size in (1, 4, 16, 32):
        result = sim.run(ruleset, database, bin_size=bin_size)
        results[bin_size] = result
        hits = sum(len(v) for v in result.matches.values())
        print(
            f"{bin_size:>8}  {result.energy_uj:>12.4f}  "
            f"{result.area_mm2:>12.4f}  {hits:>6}"
        )

    baseline = results[1]
    best = results[32]
    assert best.matches == baseline.matches, "binning must not change hits"
    print(
        f"\nBinning at 32 saves "
        f"{(1 - best.energy_uj / baseline.energy_uj) * 100:.0f}% energy vs "
        "unbinned mapping: all initial states share one tile, so the "
        "other tiles stay power-gated until a motif prefix actually "
        "matches (Fig. 7)."
    )

    # show a few hits with context
    print("\nSample hits:")
    shown = 0
    for regex in ruleset:
        for end in results[32].matches[regex.regex_id][:1]:
            start = max(0, end - 12)
            print(
                f"  {regex.pattern:<32} ...{database[start : end + 1].decode()}"
            )
            shown += 1
            if shown >= 5:
                return


if __name__ == "__main__":
    main()
